//! The `dead-metric` rule: cross-reference metric names published into
//! the [`Registry`] against the golden system-report fixture.
//!
//! Two directions:
//!
//! * a key present in the golden's `counters`/`gauges` maps that no
//!   publish-site literal can produce is a *schema orphan* — the golden
//!   was hand-edited or the publisher was deleted;
//! * a publish-site literal that no golden key matches is a *dead
//!   metric* — registered and incremented, but the conformance fixture
//!   never observes it, so regressions in it are invisible.
//!
//! Publish sites are string literals inside fns named `publish*`, plus
//! literals passed directly to the `Registry` sinks anywhere
//! (`set_counter`, `set_counter_from`, `set_gauge`, `set_stat`).
//! `format!("{prefix}reads")`-style literals contribute their brace-free
//! remainder as a *suffix fragment*; `set_stat` expands its name into
//! the derived `.mean`/`.min`/`.max`/`.count` series. Matching is
//! suffix-based on `.`-boundaries, mirroring how prefixes are composed
//! at runtime.
//!
//! The `scenarios` crate publishes into per-tenant registries that the
//! System golden never sees, so it is out of scope on both directions.

use std::collections::BTreeSet;
use std::path::Path;

use crate::baseline::AllowEntry;
use crate::graph::ParsedFile;
use crate::tok::{Tok, TokKind};
use crate::{DetScope, Finding, Rule, TargetKind};

/// Registry methods whose first string argument is a metric name.
const SINKS: &[&str] = &["set_counter", "set_counter_from", "set_gauge", "set_stat"];

/// Suffixes `set_stat` derives from its base name.
const STAT_SUFFIXES: &[&str] = &[".mean", ".min", ".max", ".count"];

/// One literal observed at a publish site.
#[derive(Debug, Clone)]
struct PublishedName {
    /// Brace-free metric name or suffix fragment.
    name: String,
    /// Whether a runtime prefix precedes it (`{prefix}reads`, closure
    /// helpers) — matched as a suffix instead of exactly.
    fragment: bool,
    file: String,
    line: usize,
    /// Enclosing fn scope for the baseline key.
    scope: String,
}

/// Runs the dead-metric pass. `golden_rel` is the workspace-relative
/// fixture path; a missing fixture disables the rule (the conformance
/// battery owns fixture presence).
pub fn dead_metric_pass(
    root: &Path,
    golden_rel: &str,
    files: &[ParsedFile],
    allowlist: &[AllowEntry],
    findings: &mut Vec<Finding>,
    allowlisted: &mut usize,
) {
    let Ok(golden_text) = std::fs::read_to_string(root.join(golden_rel)) else {
        return;
    };
    let golden = golden_metric_keys(&golden_text);
    if golden.is_empty() {
        return;
    }

    let mut published: Vec<PublishedName> = Vec::new();
    for pf in files {
        if pf.det != DetScope::Strict
            || pf.target != TargetKind::Lib
            || pf.crate_name == "scenarios"
        {
            continue;
        }
        collect_published(pf, &mut published);
    }

    let mut sanction = |rule: Rule, file: &str, scope: &str, token: &str| -> bool {
        let hit = allowlist.iter().any(|a| {
            a.rule == rule.name()
                && (a.path == file || a.path == scope)
                && (a.token == "*" || a.token == token)
        });
        if hit {
            *allowlisted += 1;
        }
        hit
    };

    // Direction 1: published but never observed by the golden.
    for p in &published {
        let covered = golden.iter().any(|k| name_matches(k, &p.name, p.fragment));
        if covered {
            continue;
        }
        let scope = format!("{}#{}", p.file, p.scope);
        if sanction(Rule::DeadMetric, &p.file, &scope, &p.name) {
            continue;
        }
        findings.push(Finding::graph(
            Rule::DeadMetric,
            &p.file,
            p.line,
            &p.name,
            &p.scope,
            format!(
                "metric `{}` is published but absent from {golden_rel} — \
                 dead metric or stale golden",
                p.name
            ),
            Vec::new(),
        ));
    }

    // Direction 2: golden keys nothing can publish.
    for k in &golden {
        let covered = published
            .iter()
            .any(|p| name_matches(k, &p.name, p.fragment));
        if covered {
            continue;
        }
        if sanction(Rule::DeadMetric, golden_rel, golden_rel, k) {
            continue;
        }
        findings.push(Finding::graph(
            Rule::DeadMetric,
            golden_rel,
            1,
            k,
            "golden",
            format!("golden metric `{k}` has no publish site in the workspace"),
            Vec::new(),
        ));
    }
}

/// Whether golden key `k` can be produced by published name `name`
/// (exact, or `.`-bounded suffix for prefixed fragments).
fn name_matches(k: &str, name: &str, fragment: bool) -> bool {
    if k == name {
        return true;
    }
    if !fragment {
        return false;
    }
    // A fragment may itself start with '.' (`{name}.mean`).
    if let Some(stripped) = name.strip_prefix('.') {
        return k.ends_with(name) || k == stripped;
    }
    k.ends_with(&format!(".{name}"))
}

/// Extracts `"key":` names inside every `"counters"`/`"gauges"` object
/// of the golden JSON. Line-oriented: the fixture is generated by the
/// repo's own pretty-printer, one key per line.
fn golden_metric_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let mut in_block = false;
    let mut depth_into_block = 0i32;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"counters\"") || t.starts_with("\"gauges\"") {
            in_block = true;
            depth_into_block = 0;
            continue;
        }
        if in_block {
            depth_into_block += t.matches('{').count() as i32;
            depth_into_block -= t.matches('}').count() as i32;
            if depth_into_block < 0 {
                in_block = false;
                continue;
            }
            if let Some(rest) = t.strip_prefix('"') {
                if let Some((key, _)) = rest.split_once('"') {
                    keys.insert(key.to_string());
                }
            }
        }
    }
    keys
}

/// Collects publish-site literals from one file.
fn collect_published(pf: &ParsedFile, out: &mut Vec<PublishedName>) {
    for def in &pf.items.fns {
        if def.in_test {
            continue;
        }
        let in_publish_fn = def.name.starts_with("publish");
        let scope = match &def.owner {
            Some(o) => format!("{}::{}", o.type_name, def.name),
            None => def.name.clone(),
        };
        let toks = &pf.toks;
        for j in def.body.clone() {
            let t = &toks[j];
            if t.kind != TokKind::Lit || !t.text.starts_with('"') {
                continue;
            }
            let Some(body) = t.text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
                continue;
            };
            let sink = sink_before(toks, j, def.body.start);
            // Outside publish fns, only literals handed straight to a
            // Registry sink count — error strings elsewhere are not
            // metric names.
            if !in_publish_fn && sink.is_none() {
                continue;
            }
            let Some((name, braces)) = metric_shape(body) else {
                continue;
            };
            // A literal not handed straight to a sink (the closure
            // helpers in `publish` fns) gets its prefix composed at
            // runtime — match it as a suffix fragment too.
            let fragment = braces || sink.is_none();
            let push = |out: &mut Vec<PublishedName>, name: String| {
                out.push(PublishedName {
                    name,
                    fragment,
                    file: pf.rel_path.clone(),
                    line: t.line,
                    scope: scope.clone(),
                });
            };
            if sink == Some("set_stat") {
                for sfx in STAT_SUFFIXES {
                    push(out, format!("{name}{sfx}"));
                }
            } else {
                push(out, name);
            }
        }
    }
}

/// The Registry sink this literal is an argument of, if the call is
/// within a few tokens back (`reg.set_stat(&format!("…` puts up to five
/// tokens between the sink ident and the literal).
fn sink_before(toks: &[Tok], lit_idx: usize, floor: usize) -> Option<&'static str> {
    let lo = lit_idx.saturating_sub(7).max(floor);
    toks[lo..lit_idx]
        .iter()
        .rev()
        .find_map(|t| SINKS.iter().find(|s| t.is_ident(s)).copied())
}

/// Classifies a literal as a metric name: exact (`hma.swaps`), or a
/// fragment once `{…}` interpolations are stripped (`{prefix}reads` →
/// `reads`). Literals that don't look like metric names (spaces,
/// capitals, empty remainders) are ignored.
fn metric_shape(body: &str) -> Option<(String, bool)> {
    let mut name = String::new();
    let mut fragment = false;
    let mut in_brace = false;
    for c in body.chars() {
        match c {
            '{' => {
                in_brace = true;
                fragment = true;
            }
            '}' => in_brace = false,
            c if in_brace => {
                let _ = c;
            }
            c if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.' => {
                name.push(c)
            }
            _ => return None,
        }
    }
    // A trailing dot marks a publish *prefix* (`publish("hma.", reg)`)
    // that some stats struct completes with its own fragments — not a
    // metric name.
    if name.is_empty() || name.ends_with('.') {
        return None;
    }
    Some((name, fragment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::tok::tokenize;

    #[test]
    fn golden_keys_are_extracted_from_counter_and_gauge_blocks() {
        let text = "{\n  \"counters\": {\n    \"a.x\": 1,\n    \"a.y\": 2\n  },\n  \"other\": {\n    \"not.me\": 3\n  },\n  \"gauges\": {\n    \"g.rate\": 0.5\n  }\n}\n";
        let keys = golden_metric_keys(text);
        assert_eq!(
            keys.iter().cloned().collect::<Vec<_>>(),
            vec!["a.x", "a.y", "g.rate"]
        );
    }

    #[test]
    fn fragments_and_stat_expansion() {
        let src = "fn publish(prefix: &str, reg: &mut Registry) {\n\
                   reg.set_counter_from(&format!(\"{prefix}reads\"), &c);\n\
                   reg.set_stat(&format!(\"{prefix}latency\"), &s);\n\
                   reg.set_counter(\"hma.swaps\", 1);\n}\n";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        let pf = ParsedFile {
            rel_path: "crates/x/src/stats.rs".to_string(),
            crate_name: "x".to_string(),
            det: DetScope::Strict,
            target: TargetKind::Lib,
            toks,
            items,
        };
        let mut names = Vec::new();
        collect_published(&pf, &mut names);
        let got: Vec<(&str, bool)> = names
            .iter()
            .map(|p| (p.name.as_str(), p.fragment))
            .collect();
        assert!(got.contains(&("reads", true)));
        assert!(got.contains(&("latency.mean", true)));
        assert!(got.contains(&("latency.count", true)));
        assert!(got.contains(&("hma.swaps", false)));
    }

    #[test]
    fn prefix_literals_are_not_metric_names() {
        let src = "fn publish_metrics(&self, reg: &mut Registry) {\n\
                   self.hma.stats.publish(\"hma.\", reg);\n\
                   reg.set_counter(\"hma.swaps\", 1);\n}\n";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        let pf = ParsedFile {
            rel_path: "src/system.rs".to_string(),
            crate_name: String::new(),
            det: DetScope::Strict,
            target: TargetKind::Lib,
            toks,
            items,
        };
        let mut names = Vec::new();
        collect_published(&pf, &mut names);
        let got: Vec<&str> = names.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(got, vec!["hma.swaps"]);
    }

    #[test]
    fn suffix_matching_respects_dot_boundaries() {
        assert!(name_matches("cache.l1.reads", "reads", true));
        assert!(!name_matches("cache.l1.proc_reads", "reads", true));
        assert!(name_matches("hma.swaps", "hma.swaps", false));
        assert!(!name_matches("x.hma.swaps", "hma.swaps", false));
        assert!(name_matches("srrt.lat.mean", ".mean", true));
    }
}
