//! A small Rust tokenizer for the call-graph passes.
//!
//! The line-oriented sanitizer in [`crate::source`] is enough for the
//! local token rules, but call-graph construction needs real tokens:
//! identifiers with positions, punctuation, and comments as first-class
//! tokens (the `// lint: hot-path` and `// INVARIANT:` annotations live
//! there). The tokenizer handles the full literal zoo — strings with
//! escapes (including the `\<newline>` continuation, which the v1
//! sanitizer mis-skipped), raw strings with any number of `#` guards,
//! byte and C strings, char literals vs lifetimes, numbers with type
//! suffixes — and nested block comments.
//!
//! It does **not** attempt to be a full lexer: compound operators come
//! out as single-char puncts (`::` is two adjacent `:` tokens) because
//! the item parser only ever needs adjacency, never operator identity.

/// Token kinds the parser distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Any literal (string/char/byte/number). String-likes keep their
    /// text verbatim (the metrics pass reads metric names out of them);
    /// rule matching never looks at `Lit` tokens, so banned tokens
    /// inside literals still cannot fire.
    Lit,
    /// `'lifetime` (including loop labels).
    Lifetime,
    /// Line, block, or doc comment; text is the comment body without
    /// markers.
    Comment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: usize) -> Self {
        Self {
            kind,
            text: text.into(),
            line,
        }
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Whether this is the exact identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenizes `text`. Never fails: unrecognized bytes become puncts, an
/// unterminated literal simply runs to end of file.
pub fn tokenize(text: &str) -> Vec<Tok> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks: Vec<Tok> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();

        // Comments.
        if c == '/' && next == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            toks.push(Tok::new(TokKind::Comment, body, line));
            i = j;
            continue;
        }
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut body = String::new();
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    body.push('\n');
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    body.push(chars[j]);
                    j += 1;
                }
            }
            toks.push(Tok::new(TokKind::Comment, body, start_line));
            i = j;
            continue;
        }

        // Raw strings (r"…", r#"…"#, br##"…"##, cr#"…"#).
        if let Some((hashes, quote)) = raw_string_at(&chars, i) {
            let start_line = line;
            let mut j = quote + 1;
            while j < chars.len() {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '"' && closes_raw(&chars, j, hashes) {
                    j += 1 + hashes as usize;
                    break;
                } else {
                    j += 1;
                }
            }
            let text: String = chars[i..j.min(chars.len())].iter().collect();
            toks.push(Tok::new(TokKind::Lit, text, start_line));
            i = j;
            continue;
        }

        // Plain / byte / C strings.
        if c == '"' || (matches!(c, 'b' | 'c') && next == Some('"') && !prev_is_ident(&chars, i)) {
            let start_line = line;
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < chars.len() {
                if chars[j] == '\\' {
                    // An escape may cover a newline (string continuation);
                    // keep the line count honest either way.
                    if chars.get(j + 1) == Some(&'\n') {
                        line += 1;
                    }
                    j += 2;
                } else if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            let text: String = chars[i..j.min(chars.len())].iter().collect();
            toks.push(Tok::new(TokKind::Lit, text, start_line));
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if char_literal_at(&chars, i) {
                let mut j = i + 1;
                while j < chars.len() {
                    if chars[j] == '\\' {
                        j += 2;
                    } else if chars[j] == '\'' {
                        j += 1;
                        break;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                toks.push(Tok::new(TokKind::Lit, "' '", line));
                i = j;
                continue;
            }
            // Lifetime or label: 'ident
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            toks.push(Tok::new(TokKind::Lifetime, text, line));
            i = j;
            continue;
        }

        // Numbers (so `0x1f` never reads as ident `x1f`, and suffixed
        // literals like `12u64` stay one token).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && (is_ident_char(chars[j]) || chars[j] == '.') {
                // `1.method()` — a dot followed by a non-digit ends the
                // number (method call on a literal, or a range `0..n`).
                if chars[j] == '.' && !chars.get(j + 1).copied().unwrap_or(' ').is_ascii_digit() {
                    break;
                }
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            toks.push(Tok::new(TokKind::Lit, text, line));
            i = j;
            continue;
        }

        // Identifiers and keywords (including `r#ident` raw identifiers).
        if is_ident_start(c) || (c == '_' && next.map(is_ident_char).unwrap_or(false)) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            toks.push(Tok::new(TokKind::Ident, text, line));
            i = j;
            continue;
        }

        toks.push(Tok::new(TokKind::Punct, c.to_string(), line));
        i += 1;
    }
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// Whether a raw string starts at `i`; returns (hash count, index of the
/// opening quote).
fn raw_string_at(chars: &[char], i: usize) -> Option<(u32, usize)> {
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut j = i;
    if matches!(chars.get(j), Some('b') | Some('c')) {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j))
}

/// Whether the `"` at `i` is followed by at least `hashes` `#` guards.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// `'x'` is a char literal; `'a` in `&'a str` (no closing quote after
/// one ident char) is a lifetime.
fn char_literal_at(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(c) if is_ident_char(*c) => chars.get(i + 2) == Some(&'\''),
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_with_lines() {
        let toks = tokenize("fn foo() {\n    bar();\n}\n");
        assert!(toks[0].is_ident("fn"));
        assert_eq!(toks[0].line, 1);
        let bar = toks.iter().find(|t| t.is_ident("bar")).unwrap();
        assert_eq!(bar.line, 2);
    }

    #[test]
    fn multi_hash_raw_strings_are_one_literal() {
        let src = "let s = r##\"has \"# inner and .unwrap()\"##; keep(s);\n";
        // The whole raw string (prefix included) collapses into one
        // blanked literal: no stray `r` ident, no leaked `unwrap`.
        assert_eq!(idents(src), vec!["let", "s", "keep", "s"]);
    }

    #[test]
    fn raw_string_prefix_is_consumed() {
        // `r` must not appear as a separate ident before the literal.
        let toks = tokenize("x(r#\"y\"#);");
        let names: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn string_continuation_keeps_line_numbers() {
        // `\<newline>` inside a string spans two physical lines; the
        // token after it must be on line 3.
        let src = "let a = \"x \\\ny\";\nb();\n";
        let b = tokenize(src).into_iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "' '"));
        assert!(!toks.iter().any(|t| t.is_ident("x") && t.line == 0));
    }

    #[test]
    fn comments_are_tokens_with_bodies() {
        let toks = tokenize("// lint: hot-path\nfn f() {}\n/* block /* nested */ done */\n");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Comment && t.text.trim() == "lint: hot-path"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Comment && t.text.contains("nested")));
    }

    #[test]
    fn numbers_do_not_merge_with_method_calls() {
        let toks = tokenize("let x = 0x1f; let y = 1.max(2); let r = 0..n;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "0x1f"));
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }

    #[test]
    fn string_contents_never_become_idents() {
        // Banned-token scans only look at Ident tokens; string bodies
        // must stay inside single Lit tokens.
        let toks = tokenize("f(b\"panic!\", c\"unwrap\", r##\"vec![]\"##);");
        for t in &toks {
            if t.kind == TokKind::Ident {
                assert_eq!(t.text, "f");
            }
        }
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text.contains("panic")));
    }

    #[test]
    fn string_literals_keep_their_text() {
        let toks = tokenize("c(reg, \"demand_accesses\", x); let f = format!(\"{p}reads\");");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "\"demand_accesses\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "\"{p}reads\""));
    }
}
