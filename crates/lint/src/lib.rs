#![forbid(unsafe_code)]
//! `chameleon-lint` — workspace invariant linter.
//!
//! The simulator's two hardest-won properties are enforced here rather
//! than by reviewer vigilance:
//!
//! * the per-reference spine (`Core::step` → `System::access` →
//!   `OsKernel::touch` → `Hierarchy::access` → `HmaPolicy::access`,
//!   plus SRRT remap and the FR-FCFS select) is **allocation-free** —
//!   one stray `format!` silently costs the 12.66M acc/s hot path;
//! * parallel sweeps are **bit-identical** to serial ones — one
//!   wall-clock read or hash-order iteration seeding a simulated
//!   decision silently breaks the content-addressed result store.
//!
//! Four rule families (see `DESIGN.md` §13 for the full table):
//!
//! | rule            | contract                                          |
//! |-----------------|---------------------------------------------------|
//! | `hot-path-alloc`| no alloc/format tokens in annotated hot functions |
//! | `determinism`   | no wall-clock/ambient RNG/hash-order in sim code  |
//! | `panic-policy`  | `unwrap`/`expect`/`panic!` need `// INVARIANT:`   |
//! | `unsafe-forbid` | every crate root carries `#![forbid(unsafe_code)]`|
//!
//! The pass is deliberately dependency-free (the build has no crates.io
//! access): a line-oriented scanner with comment/string stripping and
//! brace-depth tracking rather than a `syn` AST walk. That trades a
//! little precision for zero dependencies and sub-second runtime; the
//! fixture tests in `tests/` pin the edge cases the approximation must
//! still get right (raw strings, nested block comments, `#[cfg(test)]`
//! modules, multi-line signatures).

mod baseline;
mod flow;
pub mod graph;
pub mod items;
mod metrics;
mod sarif;
mod scan;
mod source;
pub mod tok;
mod workspace;

pub use baseline::{apply_baseline, load_allowlist, load_baseline, write_baseline, AllowEntry};
pub use sarif::to_sarif;
pub use scan::{has_unsafe_forbid, scan_file, DET_BANNED, HOT_PATH_BANNED};
pub use workspace::{classify, scan_workspace, workspace_root_from, Report};

/// The enforced rule families. The first four are the v1 local (line
/// token) rules; the rest ride on the workspace call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Allocation/formatting tokens inside `// lint: hot-path` bodies.
    HotPathAlloc,
    /// Wall-clock, ambient RNG, or hash-order iteration in sim crates.
    Determinism,
    /// Unjustified `unwrap()`/`expect()`/`panic!` in library code.
    PanicPolicy,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// Allocation tokens in any fn *reachable from* a hot root.
    HotPathTransitive,
    /// A sim-crate fn reaches a nondeterministic source outside the
    /// strict crates (invisible to the local determinism rule).
    DeterminismTaint,
    /// A call cycle (over precisely-resolved edges) reachable from a
    /// hot root: unbounded recursion on the per-reference spine.
    HotPathRecursion,
    /// A narrowing `as` cast applied to address-like arithmetic.
    LossyCast,
    /// A metric published in code but absent from the golden fixture,
    /// or present in the golden but never published.
    DeadMetric,
}

impl Rule {
    /// Stable kebab-case name used in output, baselines and allowlists.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::Determinism => "determinism",
            Rule::PanicPolicy => "panic-policy",
            Rule::UnsafeForbid => "unsafe-forbid",
            Rule::HotPathTransitive => "hot-path-transitive",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::HotPathRecursion => "hot-path-recursion",
            Rule::LossyCast => "lossy-cast",
            Rule::DeadMetric => "dead-metric",
        }
    }

    /// Rule semantics version, embedded in every baseline key as
    /// `name@vN`. Bump when a rule's matching logic changes so stale
    /// baseline entries die loudly instead of masking new findings.
    pub fn version(self) -> u32 {
        match self {
            // The v1 local rules are at semantics version 2: same token
            // lists, but keys gained the version tag itself.
            Rule::HotPathAlloc | Rule::Determinism | Rule::PanicPolicy | Rule::UnsafeForbid => 2,
            Rule::HotPathTransitive
            | Rule::DeterminismTaint
            | Rule::HotPathRecursion
            | Rule::LossyCast
            | Rule::DeadMetric => 1,
        }
    }

    /// `name@vN`, the rule field used in baseline keys.
    pub fn versioned_name(self) -> String {
        format!("{}@v{}", self.name(), self.version())
    }
}

/// What kind of target a source file belongs to, derived from its path
/// inside the crate. Tests, benches, examples and binaries are exempt
/// from `panic-policy`; benches are additionally exempt from
/// `determinism` (measurement code times things by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` library code — all rules apply.
    Lib,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**` benchmark code.
    Bench,
    /// `examples/**`.
    Example,
    /// `src/bin/**`, `src/main.rs`, `build.rs`.
    Bin,
}

/// Determinism-rule scope for a crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetScope {
    /// Simulation crates: findings are hard errors.
    Strict,
    /// `sweep`/`bench`: wall-clock is legitimate in progress/measurement
    /// code, but each use must be listed in the checked-in allowlist.
    Allowlisted,
    /// Non-simulation code (the linter itself).
    Off,
}

/// Per-file scan context.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Target classification (see [`TargetKind`]).
    pub target: TargetKind,
    /// Determinism scope of the owning crate.
    pub determinism: DetScope,
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The banned token (or identifier) that matched.
    pub token: String,
    /// Human-readable description.
    pub message: String,
    /// Line-number-independent identity used by the baseline ratchet:
    /// `rule@vN|file|token|context`. For local rules the context is the
    /// normalized code line; for graph rules it is the enclosing fn's
    /// scope (`Type::name`), which survives any edit that keeps the fn.
    pub key: String,
    /// Call chain from the root to the offending fn (graph rules only;
    /// empty for local rules). Entries are fn FQNs.
    pub blame: Vec<String>,
}

impl Finding {
    /// Builds a local (line-token) finding, deriving the baseline key
    /// from the normalized source line so the key survives unrelated
    /// edits above it.
    pub fn new(
        rule: Rule,
        file: &str,
        line: usize,
        token: &str,
        code: &str,
        message: String,
    ) -> Self {
        let norm: String = code.split_whitespace().collect::<Vec<_>>().join(" ");
        Self {
            rule,
            file: file.to_string(),
            line,
            token: token.to_string(),
            message,
            key: format!("{}|{}|{}|{}", rule.versioned_name(), file, token, norm),
            blame: Vec::new(),
        }
    }

    /// Builds a call-graph finding keyed on the enclosing fn's scope
    /// (`file#Type::name` split into its parts) rather than a code line.
    pub fn graph(
        rule: Rule,
        file: &str,
        line: usize,
        token: &str,
        fn_scope: &str,
        message: String,
        blame: Vec<String>,
    ) -> Self {
        Self {
            rule,
            file: file.to_string(),
            line,
            token: token.to_string(),
            message,
            key: format!("{}|{}|{}|{}", rule.versioned_name(), file, token, fn_scope),
            blame,
        }
    }
}
