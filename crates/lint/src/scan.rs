//! The per-file scanner: context tracking (brace depth, `#[cfg(test)]`
//! spans, `// lint: hot-path` function bodies) and the three line-level
//! rule families. The fourth family (`unsafe-forbid`) is a whole-file
//! property checked by the workspace walker.

use crate::source::{sanitize, Line};
use crate::{DetScope, FileContext, Finding, Rule, TargetKind};

/// Allocation and formatting tokens banned inside `// lint: hot-path`
/// function bodies (the per-reference spine must stay allocation-free).
pub const HOT_PATH_BANNED: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "format!",
    "String::from",
    ".to_vec()",
    ".collect()",
    ".collect::<",
    "HashMap",
];

/// Wall-clock, ambient-randomness, and host-threading tokens banned in
/// simulation crates (a simulated decision seeded from real time is
/// unreproducible, and ad-hoc thread pools order results by host
/// scheduling). Sanctioned uses — the sharded batch fill, the sweep
/// worker pool — carry explicit `allowlist.txt` entries instead of a
/// scope-wide exemption.
pub const DET_BANNED: &[&str] = &[
    "std::time",
    "Instant",
    "SystemTime",
    "thread_rng",
    "std::thread",
    "thread::scope",
    "rayon",
];

/// Iteration adaptors that observe hash order when called on a
/// `HashMap`/`HashSet`.
const HASH_ITER: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

/// Scans one file's source text under the given context, appending
/// findings. Line numbers are 1-based.
pub fn scan_file(ctx: &FileContext, text: &str, out: &mut Vec<Finding>) {
    let lines = sanitize(text);
    let spans = ContextSpans::compute(&lines);
    let hash_idents = collect_hash_idents(&lines);

    for (idx, line) in lines.iter().enumerate() {
        if spans.in_test[idx] {
            continue; // tests are exempt from every line rule
        }
        let lineno = idx + 1;

        if spans.in_hot[idx] {
            for tok in HOT_PATH_BANNED {
                if line.code.contains(tok) {
                    out.push(Finding::new(
                        Rule::HotPathAlloc,
                        &ctx.rel_path,
                        lineno,
                        tok,
                        &line.code,
                        format!("`{tok}` inside a `// lint: hot-path` function body"),
                    ));
                }
            }
        }

        if ctx.determinism != DetScope::Off
            && matches!(ctx.target, TargetKind::Lib | TargetKind::Bin)
        {
            for tok in DET_BANNED {
                if contains_word(&line.code, tok) {
                    out.push(Finding::new(
                        Rule::Determinism,
                        &ctx.rel_path,
                        lineno,
                        tok,
                        &line.code,
                        format!("`{tok}` in simulation code (wall-clock/ambient RNG)"),
                    ));
                }
            }
            for ident in &hash_idents {
                if iterates_ident(&lines, idx, ident) {
                    out.push(Finding::new(
                        Rule::Determinism,
                        &ctx.rel_path,
                        lineno,
                        ident,
                        &line.code,
                        format!("iteration over `{ident}` (a HashMap/HashSet) observes hash order"),
                    ));
                }
            }
        }

        if ctx.target == TargetKind::Lib {
            for tok in [".unwrap()", ".expect(", "panic!"] {
                if panic_token_at(&line.code, tok) && !has_invariant(&lines, idx) {
                    out.push(Finding::new(
                        Rule::PanicPolicy,
                        &ctx.rel_path,
                        lineno,
                        tok,
                        &line.code,
                        format!("`{tok}` in library code without an adjacent `// INVARIANT:` justification"),
                    ));
                }
            }
        }
    }
}

/// Whether a crate-root source text carries `#![forbid(unsafe_code)]`
/// outside comments/strings.
pub fn has_unsafe_forbid(text: &str) -> bool {
    sanitize(text).iter().any(|l| {
        let squashed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        squashed.contains("#![forbid(unsafe_code)]")
    })
}

/// Per-line boolean context computed in one pass: `#[cfg(test)]` /
/// `#[test]` item spans and `// lint: hot-path` function bodies.
struct ContextSpans {
    in_test: Vec<bool>,
    in_hot: Vec<bool>,
}

impl ContextSpans {
    fn compute(lines: &[Line]) -> Self {
        let n = lines.len();
        let mut in_test = vec![false; n];
        let mut in_hot = vec![false; n];

        let mut depth: i64 = 0;
        // Open regions as (entry_depth, opened) — a region covers lines
        // while the brace depth stays above its entry depth.
        let mut test_region: Option<(i64, bool)> = None;
        let mut hot_region: Option<(i64, bool)> = None;
        // Attribute seen, waiting for the item's opening brace.
        let mut pending_test = false;
        // Annotation seen, waiting for the `fn` line.
        let mut pending_hot_comment = false;
        // `fn` line seen, waiting for `{` (multi-line signatures).
        let mut pending_hot_body = false;

        for (idx, line) in lines.iter().enumerate() {
            let code = line.code.trim();

            // The annotation must be the entire comment, so prose that
            // merely *mentions* the marker never arms the scanner.
            if line.comment.trim() == "lint: hot-path" {
                pending_hot_comment = true;
            }
            if code.contains("#[cfg(test") || code.starts_with("#[test]") {
                pending_test = true;
            }
            if pending_hot_comment && !code.is_empty() && !code.starts_with("#[") {
                if contains_word(code, "fn") {
                    pending_hot_body = true;
                }
                pending_hot_comment = false;
            }
            if code.contains(';') && !code.contains('{') {
                // A statement (e.g. `#[cfg(test)] use …;` or a trait
                // method declaration) consumes any pending attribute.
                pending_hot_body = false;
                pending_test = false;
            }

            let opens = line.code.matches('{').count() as i64;
            let closes = line.code.matches('}').count() as i64;
            let depth_after = depth + opens - closes;

            if opens > 0 {
                if pending_test && test_region.is_none() {
                    test_region = Some((depth, true));
                    pending_test = false;
                }
                if pending_hot_body && hot_region.is_none() {
                    hot_region = Some((depth, true));
                    pending_hot_body = false;
                }
            }

            if test_region.is_some() {
                in_test[idx] = true;
            }
            if hot_region.is_some() {
                in_hot[idx] = true;
            }

            if let Some((entry, _)) = test_region {
                if depth_after <= entry {
                    test_region = None;
                }
            }
            if let Some((entry, _)) = hot_region {
                if depth_after <= entry {
                    hot_region = None;
                }
            }
            depth = depth_after;
        }
        Self { in_test, in_hot }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file:
/// struct fields (`name: HashMap<…>`) and let-bindings
/// (`let mut name = HashSet::new()`), with or without the
/// `std::collections::` path prefix.
fn collect_hash_idents(lines: &[Line]) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for (pos, _) in code.match_indices(ty) {
                if let Some(ident) = binding_ident_before(code, pos) {
                    if !idents.contains(&ident) {
                        idents.push(ident);
                    }
                }
            }
        }
    }
    idents
}

/// Walks backwards from a `HashMap`/`HashSet` occurrence over an
/// optional path prefix and a `:` or `=` binder to the bound identifier.
fn binding_ident_before(code: &str, ty_pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = ty_pos;
    // Skip a `std::collections::`-style path prefix.
    loop {
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i >= 2 && &code[i - 2..i] == "::" {
            i -= 2;
            while i > 0 && is_ident_char(bytes[i - 1] as char) {
                i -= 1;
            }
        } else {
            break;
        }
    }
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    let binder = bytes[i - 1] as char;
    if binder != ':' && binder != '=' {
        return None;
    }
    i -= 1;
    if binder == ':' && i > 0 && bytes[i - 1] == b':' {
        return None; // `::HashMap` path, not a type ascription
    }
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1] as char) {
        i -= 1;
    }
    let ident = &code[i..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

/// Whether line `idx` iterates the tracked identifier: a direct
/// iteration-adaptor call, a `for … in` over it, or a method chain that
/// wraps onto the next line (`self.map\n    .iter()`).
fn iterates_ident(lines: &[Line], idx: usize, ident: &str) -> bool {
    let code = &lines[idx].code;
    for adaptor in HASH_ITER {
        let pat = format!("{ident}{adaptor}");
        if word_bounded(code, &pat) {
            return true;
        }
    }
    // Chained call broken across lines: `…ident` / `.adaptor()`.
    let trimmed = code.trim_end();
    if trimmed.ends_with(ident)
        && ends_at_word_boundary(trimmed, ident)
        && lines.get(idx + 1).is_some_and(|next| {
            HASH_ITER
                .iter()
                .any(|a| next.code.trim_start().starts_with(a))
        })
    {
        return true;
    }
    // `for x in ident` / `for (k, v) in &self.ident {`.
    if let Some(in_pos) = find_word(code, "in") {
        if contains_word(code, "for") {
            let tail = code[in_pos + 2..]
                .trim_start()
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start_matches("self.");
            if tail.starts_with(ident)
                && !tail[ident.len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            {
                return true;
            }
        }
    }
    false
}

/// Whether the `.unwrap()` / `.expect(` / `panic!` token occurs in code
/// position. Method tokens start with `.` and are self-delimiting
/// (`x.unwrap()` must match); for `panic!` the preceding char must not
/// be part of an identifier, so `dont_panic!()` never matches.
fn panic_token_at(code: &str, tok: &str) -> bool {
    if tok.starts_with('.') {
        return code.contains(tok);
    }
    code.match_indices(tok)
        .any(|(pos, _)| pos == 0 || !is_ident_char(code.as_bytes()[pos - 1] as char))
}

/// An adjacent justification: a comment containing `INVARIANT:` on the
/// same line or on one of the three preceding lines.
fn has_invariant(lines: &[Line], idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx).any(|i| lines[i].comment.contains("INVARIANT:"))
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Substring match with identifier-style word boundaries on both sides.
fn contains_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

fn find_word(code: &str, word: &str) -> Option<usize> {
    code.match_indices(word).map(|(p, _)| p).find(|&pos| {
        let before_ok = pos == 0 || !is_ident_char(code.as_bytes()[pos - 1] as char);
        let after = pos + word.len();
        let after_ok =
            after >= code.len() || !is_ident_char(code[after..].chars().next().unwrap_or(' '));
        before_ok && after_ok
    })
}

/// Whether some occurrence of `pat` in `code` starts at a word boundary.
fn word_bounded(code: &str, pat: &str) -> bool {
    code.match_indices(pat)
        .any(|(pos, _)| pos == 0 || !is_ident_char(code.as_bytes()[pos - 1] as char))
}

fn ends_at_word_boundary(code: &str, ident: &str) -> bool {
    let start = code.len() - ident.len();
    start == 0 || !is_ident_char(code.as_bytes()[start - 1] as char)
}
