//! Line-oriented Rust source preparation.
//!
//! Rule matching must never fire on text inside comments, string
//! literals, or char literals — a doc example mentioning `unwrap()` or a
//! raw string containing `panic!` is not a violation. This module splits
//! a file into physical lines where literal *contents* and comment
//! bodies are blanked out, while the comment text itself is preserved
//! separately (annotations like `// lint: hot-path` and `// INVARIANT:`
//! live in comments).
//!
//! The lexer handles the constructs that matter for a line scanner:
//! line and (nested) block comments, string literals with escapes, raw
//! strings with arbitrary `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`),
//! byte strings, char literals, and the char-literal/lifetime ambiguity
//! (`'a'` vs `&'a str`).

/// One physical source line, split into rule-matchable code and comment
/// text.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comment bodies and literal contents replaced by a
    /// single space (delimiting quotes are kept, so call shapes like
    /// `.expect("…")` survive as `.expect(" ")`).
    pub code: String,
    /// Concatenated text of every comment on this line, without the
    /// comment markers.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
    Char,
}

/// Splits `text` into sanitized [`Line`]s. Multi-line constructs
/// (block comments, multi-line strings) carry their state across line
/// boundaries; the blanked region contributes one space per line so
/// adjacent tokens never merge.
pub fn sanitize(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    line.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    line.code.push('"');
                    line.code.push(' ');
                    i += 1;
                } else if let Some(hashes) = raw_string_at(&chars, i) {
                    // Skip the whole `b? r #*"` prefix.
                    while chars[i] != '"' {
                        i += 1;
                    }
                    state = State::RawStr { hashes };
                    line.code.push('"');
                    line.code.push(' ');
                    i += 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    state = State::Str;
                    line.code.push('"');
                    line.code.push(' ');
                    i += 2;
                } else if c == '\'' && char_literal_at(&chars, i) {
                    state = State::Char;
                    line.code.push('\'');
                    line.code.push(' ');
                    i += 1;
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // A `\<newline>` line continuation must leave the
                    // newline for the top-of-loop handler, or physical
                    // line numbers drift for everything below it.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2; // escaped char, whatever it is
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Whether a raw-string literal (`r"`, `r#"`, `br##"` …) starts at `i`.
/// Returns the number of `#` guards.
fn raw_string_at(chars: &[char], i: usize) -> Option<u32> {
    if prev_is_ident(chars, i) {
        return None; // `foo_r"` is the tail of an identifier
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Whether the `"` at `i` is followed by enough `#`s to close a raw
/// string with `hashes` guards.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Disambiguates a `'` in code position: char literal (enter literal
/// state) vs lifetime / loop label (plain code).
fn char_literal_at(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true, // '\n', '\'', '\u{…}'
        Some(c) if c.is_alphanumeric() || *c == '_' => {
            // 'a' is a char literal; 'a as in &'a str, 'static, or the
            // label 'outer: is a lifetime. The difference: a char
            // literal has a closing quote right after the single char.
            chars.get(i + 2) == Some(&'\'')
        }
        // Punctuation chars: '(', ' ', '{' … are char literals.
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        sanitize(text).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_but_kept() {
        let lines = sanitize("let x = 1; // call .unwrap() here\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn string_contents_are_blanked_quotes_kept() {
        let code = code_of("let s = \"panic! and .unwrap()\";\n");
        assert!(!code[0].contains("panic!"));
        assert!(code[0].contains("\" \""));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of(r#"let s = "a \" .unwrap() \" b"; x.foo();"#);
        assert!(!code[0].contains("unwrap"));
        assert!(code[0].contains("x.foo()"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r#\"calls .unwrap() \"inner\" and panic!\"#; y.bar();\n";
        let code = code_of(src);
        assert!(!code[0].contains("unwrap"));
        assert!(!code[0].contains("panic!"));
        assert!(code[0].contains("y.bar()"));
    }

    #[test]
    fn multi_hash_raw_strings_do_not_close_on_shorter_guards() {
        // `"#` inside an `r##"…"##` literal must not end it — only a
        // guard of the full hash count closes the string.
        let src = "let s = r##\"quote\"# still .unwrap() inside\"##; z.ok();\n";
        let code = code_of(src);
        assert!(!code[0].contains("unwrap"), "{code:?}");
        assert!(code[0].contains("z.ok()"), "{code:?}");

        let src = "let b = br###\"vec![ \"## panic!\"###; tail();\n";
        let code = code_of(src);
        assert!(!code[0].contains("vec!["), "{code:?}");
        assert!(!code[0].contains("panic!"), "{code:?}");
        assert!(code[0].contains("tail()"), "{code:?}");
    }

    #[test]
    fn string_continuations_keep_line_accounting() {
        // A `\`-newline continuation keeps the string open across the
        // physical line break; the banned token on the next line is
        // still literal text, and the line count must not drift.
        let src = "let s = \"first \\\n  .unwrap() second\"; after();\nnext();\n";
        let lines = sanitize(src);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(!lines[1].code.contains("unwrap"), "{lines:?}");
        assert!(lines[1].code.contains("after()"), "{lines:?}");
        assert!(lines[2].code.contains("next()"), "{lines:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* .unwrap() */ still comment */ b();\n";
        let lines = sanitize(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("a()"));
        assert!(lines[0].code.contains("b()"));
        assert!(lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let src = "a();\n/* one\n .unwrap()\n two */\nb();\n";
        let code = code_of(src);
        assert_eq!(code.len(), 5);
        assert!(!code[2].contains("unwrap"));
        assert!(code[4].contains("b()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, c: char) -> &'a str { if c == 'x' { x } else { x } }\n";
        let code = code_of(src);
        // The 'x' literal is blanked; lifetimes survive as code.
        assert!(code[0].contains("<'a>"));
        assert!(code[0].contains("&'a str"));
        assert!(!code[0].contains("'x'"));
    }

    #[test]
    fn char_escapes() {
        let code = code_of("let q = '\\''; let n = '\\n'; z.call();\n");
        assert!(code[0].contains("z.call()"));
    }

    #[test]
    fn byte_strings_are_blanked() {
        let code = code_of("let b = b\".unwrap()\"; ok();\n");
        assert!(!code[0].contains("unwrap"));
        assert!(code[0].contains("ok()"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = sanitize("/// Calls `foo.unwrap()` on bad days.\nfn f() {}\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[1].code.contains("fn f()"));
    }
}
