//! Minimal SARIF 2.1.0 emitter for CI code-scanning annotations.
//!
//! Hand-rolled like the CLI's `--json` output (the linter is
//! dependency-free by design). Only the subset GitHub code scanning
//! reads is emitted: tool driver with rule metadata, one result per
//! finding with a physical location, and the baseline state mapped onto
//! SARIF's `baselineState` so pre-existing findings annotate without
//! failing the job.

use crate::{Finding, Rule};

const ALL_RULES: &[Rule] = &[
    Rule::HotPathAlloc,
    Rule::Determinism,
    Rule::PanicPolicy,
    Rule::UnsafeForbid,
    Rule::HotPathTransitive,
    Rule::DeterminismTaint,
    Rule::HotPathRecursion,
    Rule::LossyCast,
    Rule::DeadMetric,
];

/// Renders findings as a SARIF 2.1.0 document. `new` holds the keys of
/// findings not covered by the baseline (reported as `new`; the rest as
/// `unchanged`).
pub fn to_sarif(findings: &[Finding], new_keys: &[&str]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"chameleon-lint\",\n          \"informationUri\": \"https://example.invalid/chameleon\",\n          \"rules\": [\n",
    );
    for (i, r) in ALL_RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"name\": {}}}{}\n",
            json_str(r.name()),
            json_str(&camel(r.name())),
            if i + 1 < ALL_RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let state = if new_keys.contains(&f.key.as_str()) {
            "new"
        } else {
            "unchanged"
        };
        let mut message = f.message.clone();
        if !f.blame.is_empty() {
            message.push_str(&format!(" [blame: {}]", f.blame.join(" -> ")));
        }
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": \"error\", \"baselineState\": \"{state}\", \"message\": {{\"text\": {}}}, \"partialFingerprints\": {{\"chameleonLintKey\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_str(f.rule.name()),
            json_str(&message),
            json_str(&f.key),
            json_str(&f.file),
            f.line.max(1),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn camel(kebab: &str) -> String {
    kebab
        .split('-')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_has_rules_results_and_baseline_state() {
        let f = Finding::graph(
            Rule::HotPathTransitive,
            "crates/x/src/lib.rs",
            7,
            "vec![",
            "helper",
            "alloc reachable from hot root".to_string(),
            vec!["a".to_string(), "b".to_string()],
        );
        let old = Finding::new(
            Rule::PanicPolicy,
            "src/lib.rs",
            3,
            ".unwrap()",
            "x.unwrap()",
            "unjustified unwrap".to_string(),
        );
        let sarif = to_sarif(&[f.clone(), old], &[f.key.as_str()]);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"hot-path-transitive\""));
        assert!(sarif.contains("\"baselineState\": \"new\""));
        assert!(sarif.contains("\"baselineState\": \"unchanged\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("[blame: a -> b]"));
    }
}
