//! Flow analyses over the workspace call graph.
//!
//! Three passes consume [`crate::graph::Graph`]:
//!
//! * **transitive hot-path purity** — BFS from every `// lint: hot-path`
//!   root; any allocation token in a reachable (but not itself
//!   annotated) fn is a `hot-path-transitive` finding carrying the
//!   root→fn blame path. An adjacent `// INVARIANT:` comment justifies
//!   an individual allocation (cold fault paths that provably cannot
//!   run per-reference).
//! * **determinism taint** — nondeterministic sources the local rule
//!   cannot flag (leaves in non-strict crates, or uses sanctioned by a
//!   v1 `determinism` allowlist entry) are tainted and propagated
//!   backwards; a strict-crate fn whose call edge crosses into the
//!   tainted region gets a `determinism-taint` finding. The allowlist
//!   sanctions individual *edges* (`file.rs#Fn token`), and a sanctioned
//!   edge stops propagation — the sanction asserts the callee's
//!   nondeterminism does not leak into simulated state.
//! * **recursion** — cycles over *precisely*-resolved edges reachable
//!   from a hot root (`hot-path-recursion`): the per-reference spine
//!   must have statically bounded depth.
//!
//! A fourth, graph-independent pass flags narrowing `as` casts applied
//! to address-like operands (`lossy-cast`).

use std::collections::{BTreeSet, VecDeque};
use std::ops::Range;

use crate::baseline::AllowEntry;
use crate::graph::{Graph, ParsedFile};
use crate::tok::{Tok, TokKind};
use crate::{DetScope, Finding, Rule, TargetKind};

/// Per-fn leaf facts feeding the flow analyses.
#[derive(Debug, Default, Clone)]
pub struct Facts {
    /// Allocation tokens (token, line), excluding `INVARIANT:`-justified
    /// ones.
    pub allocs: Vec<(String, usize)>,
    /// Nondeterminism tokens (token, line).
    pub nondet: Vec<(String, usize)>,
    /// Narrowing casts on address-like operands (token, line), excluding
    /// justified ones.
    pub casts: Vec<(String, usize)>,
}

/// Result of the graph passes, merged into the workspace report.
#[derive(Debug, Default)]
pub struct GraphOutcome {
    pub findings: Vec<Finding>,
    /// Findings suppressed by fn-scoped allowlist entries.
    pub allowlisted: usize,
    pub nodes: usize,
    pub edges: usize,
    pub hot_roots: usize,
    /// Crate names with at least one graph node.
    pub crates_covered: Vec<String>,
}

/// Runs every graph pass over the parsed workspace.
pub fn analyze_graph(files: &[ParsedFile], allowlist: &[AllowEntry]) -> GraphOutcome {
    let g = Graph::build(files);
    let invariants: Vec<BTreeSet<usize>> = files.iter().map(invariant_lines).collect();
    let facts: Vec<Facts> = g
        .nodes
        .iter()
        .map(|n| {
            extract_facts(
                &files[n.file_idx].toks,
                n.def.body.clone(),
                &invariants[n.file_idx],
            )
        })
        .collect();

    let mut out = GraphOutcome {
        nodes: g.nodes.len(),
        edges: g.edge_count(),
        crates_covered: g.crates_covered.iter().cloned().collect(),
        ..GraphOutcome::default()
    };

    hot_path_passes(&g, &facts, allowlist, &mut out);
    taint_pass(&g, files, &facts, allowlist, &mut out);
    lossy_cast_pass(&g, files, &facts, allowlist, &mut out);
    out
}

/// Lines carrying (or spanned by) an `INVARIANT:` comment; a fact on
/// such a line or up to three lines below one is justified, mirroring
/// the local panic-policy rule.
fn invariant_lines(pf: &ParsedFile) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    for t in &pf.toks {
        if t.kind == TokKind::Comment && t.text.contains("INVARIANT:") {
            let span = t.text.matches('\n').count();
            for l in t.line..=t.line + span {
                lines.insert(l);
            }
        }
    }
    lines
}

fn justified(inv: &BTreeSet<usize>, line: usize) -> bool {
    (line.saturating_sub(3)..=line).any(|l| inv.contains(&l))
}

/// Extracts leaf facts from one fn body. Token patterns mirror the v1
/// line lists ([`crate::scan::HOT_PATH_BANNED`], [`crate::scan::DET_BANNED`])
/// so the transitive rules never contradict the local ones.
pub fn extract_facts(toks: &[Tok], body: Range<usize>, inv: &BTreeSet<usize>) -> Facts {
    let mut f = Facts::default();
    let tok_at = |i: usize| -> Option<&Tok> {
        let t = toks.get(i)?;
        (i < body.end).then_some(t)
    };
    for j in body.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = tok_at(j + 1);
        let next2 = tok_at(j + 2);
        let prev = j.checked_sub(1).and_then(|p| toks.get(p));
        let path_to = |seg: &str| -> bool {
            next.is_some_and(|t| t.is_punct(':'))
                && next2.is_some_and(|t| t.is_punct(':'))
                && tok_at(j + 3).is_some_and(|t| t.is_ident(seg))
        };
        let is_macro = next.is_some_and(|t| t.is_punct('!'));
        let after_dot = prev.is_some_and(|t| t.is_punct('.'));

        // Allocation facts.
        let alloc: Option<&str> = match t.text.as_str() {
            "Vec" if path_to("new") => Some("Vec::new"),
            "vec" if is_macro => Some("vec!["),
            "Box" if path_to("new") => Some("Box::new"),
            "format" if is_macro => Some("format!"),
            "String" if path_to("from") => Some("String::from"),
            "to_vec" if after_dot => Some(".to_vec()"),
            "collect" if after_dot => Some(".collect()"),
            "HashMap" => Some("HashMap"),
            _ => None,
        };
        if let Some(tok) = alloc {
            if !justified(inv, t.line) {
                f.allocs.push((tok.to_string(), t.line));
            }
        }

        // Nondeterminism facts.
        let nondet: Option<&str> = match t.text.as_str() {
            "std" if path_to("time") => Some("std::time"),
            "std" if path_to("thread") => Some("std::thread"),
            "thread" if path_to("scope") => Some("thread::scope"),
            "Instant" => Some("Instant"),
            "SystemTime" => Some("SystemTime"),
            "thread_rng" => Some("thread_rng"),
            "rayon" => Some("rayon"),
            _ => None,
        };
        if let Some(tok) = nondet {
            f.nondet.push((tok.to_string(), t.line));
        }

        // Narrowing casts on address-like operands: `… addr … as u32`.
        if t.is_ident("as") {
            if let Some(ty) = next {
                if matches!(
                    ty.text.as_str(),
                    "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                ) && cast_operand_is_addressy(toks, j, body.start)
                    && !justified(inv, t.line)
                {
                    f.casts.push((format!("as {}", ty.text), t.line));
                }
            }
        }
    }
    f
}

/// Whether one of the few tokens before the `as` keyword names an
/// address-like quantity.
fn cast_operand_is_addressy(toks: &[Tok], as_idx: usize, floor: usize) -> bool {
    let lo = as_idx.saturating_sub(6).max(floor);
    toks[lo..as_idx].iter().any(|t| {
        t.kind == TokKind::Ident
            && (t.text.contains("addr")
                || t.text.contains("pfn")
                || t.text.contains("vpn")
                || t.text == "page"
                || t.text == "frame")
    })
}

/// Whether the allowlist sanctions a graph finding anchored at a fn.
/// Entries may name the whole file or the specific fn (`file.rs#Fn`);
/// graph rules are fn-scoped by design, but file entries still work for
/// coarse sanctions.
fn sanctioned(allowlist: &[AllowEntry], rule: Rule, file: &str, scope: &str, token: &str) -> bool {
    allowlist.iter().any(|a| {
        a.rule == rule.name()
            && (a.path == file || a.path == scope)
            && (a.token == "*" || a.token == token)
    })
}

/// Local part of an allowlist scope (`file.rs#Type::fn` → `Type::fn`).
fn scope_local(scope: &str) -> &str {
    scope.rsplit_once('#').map_or(scope, |(_, l)| l)
}

/// Transitive purity + recursion (both keyed on hot-root reachability).
fn hot_path_passes(g: &Graph, facts: &[Facts], allowlist: &[AllowEntry], out: &mut GraphOutcome) {
    let n = g.nodes.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut reached = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();

    for (id, node) in g.nodes.iter().enumerate() {
        if node.def.is_hot && !node.def.in_test {
            reached[id] = true;
            queue.push_back(id);
            out.hot_roots += 1;
        }
    }
    while let Some(id) = queue.pop_front() {
        for e in &g.edges[id] {
            if !reached[e.to] {
                reached[e.to] = true;
                parent[e.to] = Some(id);
                queue.push_back(e.to);
            }
        }
    }

    let blame_of = |id: usize| -> Vec<String> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain.into_iter().map(|i| g.nodes[i].fqn.clone()).collect()
    };

    // Transitive allocation purity.
    for id in 0..n {
        let node = &g.nodes[id];
        if !reached[id] || node.def.is_hot {
            continue; // annotated roots are the local rule's business
        }
        for (tok, line) in &facts[id].allocs {
            if sanctioned(
                allowlist,
                Rule::HotPathTransitive,
                &node.file,
                &node.scope,
                tok,
            ) {
                out.allowlisted += 1;
                continue;
            }
            let blame = blame_of(id);
            out.findings.push(Finding::graph(
                Rule::HotPathTransitive,
                &node.file,
                *line,
                tok,
                scope_local(&node.scope),
                format!(
                    "`{tok}` in `{}`, reachable from hot root via {}",
                    node.fqn,
                    blame.join(" -> ")
                ),
                blame,
            ));
        }
    }

    // Recursion over precise edges within the hot-reachable region.
    for scc in precise_sccs(g, &reached) {
        let anchor = *scc
            .iter()
            .min_by_key(|&&id| &g.nodes[id].fqn)
            // INVARIANT: Tarjan only ever emits non-empty components.
            .expect("scc is non-empty");
        let node = &g.nodes[anchor];
        if sanctioned(
            allowlist,
            Rule::HotPathRecursion,
            &node.file,
            &node.scope,
            "recursion",
        ) {
            out.allowlisted += 1;
            continue;
        }
        let mut cycle: Vec<String> = scc.iter().map(|&id| g.nodes[id].fqn.clone()).collect();
        cycle.sort();
        out.findings.push(Finding::graph(
            Rule::HotPathRecursion,
            &node.file,
            node.def.line,
            "recursion",
            scope_local(&node.scope),
            format!(
                "call cycle reachable from a hot root: {} (unbounded recursion on the spine)",
                cycle.join(" -> ")
            ),
            blame_of(anchor),
        ));
    }
}

/// SCCs of size > 1 (or with a self-loop) over precise edges, restricted
/// to hot-reachable nodes. Iterative Tarjan.
fn precise_sccs(g: &Graph, reached: &[bool]) -> Vec<Vec<usize>> {
    let n = g.nodes.len();
    let succ = |id: usize| {
        g.edges[id]
            .iter()
            .filter(|e| e.precise && reached[e.to])
            .map(|e| e.to)
    };

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, iterator position over successors).
    for start in 0..n {
        if !reached[start] || index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = succ(v).collect();
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = comp.len() == 1 && succ(comp[0]).any(|t| t == comp[0]);
                    if comp.len() > 1 || self_loop {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
                // INVARIANT: this branch is only taken while the explicit
                // DFS stack is non-empty.
                let done = frames.pop().expect("frame exists").0;
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[done]);
                }
            }
        }
    }
    sccs
}

/// Determinism taint: backward propagation from sources the local rule
/// cannot see, with per-edge sanctions, reported at strict-crate
/// crossing edges.
fn taint_pass(
    g: &Graph,
    files: &[ParsedFile],
    facts: &[Facts],
    allowlist: &[AllowEntry],
    out: &mut GraphOutcome,
) {
    let n = g.nodes.len();
    // A nondet fact is a *taint source* iff the local determinism rule
    // does not already hard-fail it: the fn lives outside the strict
    // crates, or the use carries a v1 `determinism` allowlist entry.
    let source_tok: Vec<Option<&str>> = (0..n)
        .map(|id| {
            let node = &g.nodes[id];
            let pf = &files[node.file_idx];
            facts[id].nondet.iter().find_map(|(tok, _)| {
                let visible_to_v1 = pf.det == DetScope::Strict
                    && matches!(pf.target, TargetKind::Lib | TargetKind::Bin)
                    && !allowlist.iter().any(|a| {
                        a.rule == "determinism"
                            && a.path == node.file
                            && (a.token == "*" || a.token == *tok)
                    });
                (!visible_to_v1 && pf.det != DetScope::Off).then_some(tok.as_str())
            })
        })
        .collect();

    // Reverse adjacency for backward propagation.
    let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (caller, line)
    for (id, edges) in g.edges.iter().enumerate() {
        for e in edges {
            rev[e.to].push((id, e.line));
        }
    }

    // witness[id] = (token, next hop toward the source) for tainted fns.
    let mut witness: Vec<Option<(String, Option<usize>)>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for id in 0..n {
        if let Some(tok) = source_tok[id] {
            witness[id] = Some((tok.to_string(), None));
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        // INVARIANT: ids enter the queue only after a witness is recorded.
        let tok = witness[id]
            .as_ref()
            .expect("queued fns are tainted")
            .0
            .clone();
        for &(caller, _line) in &rev[id] {
            if witness[caller].is_some() {
                continue;
            }
            let cn = &g.nodes[caller];
            // A sanctioned edge absorbs the taint: the caller vouches
            // that the callee's nondeterminism stays out of sim state.
            if sanctioned(allowlist, Rule::DeterminismTaint, &cn.file, &cn.scope, &tok) {
                continue;
            }
            witness[caller] = Some((tok.clone(), Some(id)));
            queue.push_back(caller);
        }
    }

    let chain_from = |mut id: usize| -> Vec<String> {
        let mut chain = vec![g.nodes[id].fqn.clone()];
        while let Some((_, Some(next))) = &witness[id] {
            id = *next;
            chain.push(g.nodes[id].fqn.clone());
        }
        chain
    };

    // Report at crossing edges: strict lib fn → tainted fn that is
    // either outside the strict crates or itself a source.
    for (id, node) in g.nodes.iter().enumerate() {
        let pf = &files[node.file_idx];
        if pf.det != DetScope::Strict || pf.target != TargetKind::Lib || node.def.in_test {
            continue;
        }
        for e in &g.edges[id] {
            let Some((tok, _)) = &witness[e.to] else {
                continue;
            };
            let callee = &g.nodes[e.to];
            let crossing =
                files[callee.file_idx].det != DetScope::Strict || source_tok[e.to].is_some();
            if !crossing {
                continue;
            }
            if sanctioned(
                allowlist,
                Rule::DeterminismTaint,
                &node.file,
                &node.scope,
                tok,
            ) {
                out.allowlisted += 1;
                continue;
            }
            let mut blame = vec![node.fqn.clone()];
            blame.extend(chain_from(e.to));
            out.findings.push(Finding::graph(
                Rule::DeterminismTaint,
                &node.file,
                e.line,
                tok,
                scope_local(&node.scope),
                format!(
                    "sim code can reach `{tok}` via {} — sanction the edge \
                     (`{} {tok}`) or break the call",
                    blame.join(" -> "),
                    node.scope
                ),
                blame,
            ));
        }
    }
}

/// Narrowing casts on address arithmetic, workspace-wide for strict
/// library code.
fn lossy_cast_pass(
    g: &Graph,
    files: &[ParsedFile],
    facts: &[Facts],
    allowlist: &[AllowEntry],
    out: &mut GraphOutcome,
) {
    for (id, node) in g.nodes.iter().enumerate() {
        let pf = &files[node.file_idx];
        if pf.det != DetScope::Strict || pf.target != TargetKind::Lib || node.def.in_test {
            continue;
        }
        for (tok, line) in &facts[id].casts {
            if sanctioned(allowlist, Rule::LossyCast, &node.file, &node.scope, tok) {
                out.allowlisted += 1;
                continue;
            }
            out.findings.push(Finding::graph(
                Rule::LossyCast,
                &node.file,
                *line,
                tok,
                scope_local(&node.scope),
                format!(
                    "narrowing `{tok}` on an address-like value in `{}` — \
                     widen, mask explicitly, or justify with `// INVARIANT:`",
                    node.fqn
                ),
                Vec::new(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::tok::tokenize;

    fn pfile(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        let toks = tokenize(src);
        let items = parse_items(&toks);
        ParsedFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            det: DetScope::Strict,
            target: TargetKind::Lib,
            toks,
            items,
        }
    }

    fn rules(out: &GraphOutcome, rule: Rule) -> Vec<&Finding> {
        out.findings.iter().filter(|f| f.rule == rule).collect()
    }

    #[test]
    fn transitive_alloc_via_helper_is_found_with_blame() {
        let files = [pfile(
            "crates/x/src/lib.rs",
            "x",
            "// lint: hot-path\nfn hot() { helper(); }\n\
             fn helper() { deeper(); }\n\
             fn deeper() { let v = vec![1]; drop(v); }\n",
        )];
        let out = analyze_graph(&files, &[]);
        let f = rules(&out, Rule::HotPathTransitive);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "vec![");
        assert_eq!(
            f[0].blame,
            vec![
                "chameleon_x::hot",
                "chameleon_x::helper",
                "chameleon_x::deeper"
            ]
        );
    }

    #[test]
    fn invariant_justifies_transitive_alloc() {
        let files = [pfile(
            "crates/x/src/lib.rs",
            "x",
            "// lint: hot-path\nfn hot() { cold(); }\n\
             fn cold() {\n    // INVARIANT: one-time table growth, never per-reference\n    let v = vec![1];\n    drop(v);\n}\n",
        )];
        let out = analyze_graph(&files, &[]);
        assert!(rules(&out, Rule::HotPathTransitive).is_empty());
    }

    #[test]
    fn recursion_cycle_reachable_from_hot_root() {
        let files = [pfile(
            "crates/x/src/lib.rs",
            "x",
            "// lint: hot-path\nfn hot() { ping(0); }\n\
             fn ping(n: u64) { pong(n); }\n\
             fn pong(n: u64) { ping(n); }\n\
             fn unrelated_cycle() { unrelated_cycle(); }\n",
        )];
        let out = analyze_graph(&files, &[]);
        let f = rules(&out, Rule::HotPathRecursion);
        assert_eq!(f.len(), 1, "only the hot-reachable cycle fires");
        assert!(f[0].message.contains("ping"));
        assert!(f[0].message.contains("pong"));
    }

    #[test]
    fn taint_crossing_edge_is_reported_and_edge_sanction_silences() {
        let mk = || {
            [
                pfile(
                    "crates/core/src/machine.rs",
                    "core",
                    "pub fn drive() { chameleon_sweep::progress::tick(); }\n",
                ),
                ParsedFile {
                    det: DetScope::Allowlisted,
                    ..pfile(
                        "crates/sweep/src/progress.rs",
                        "sweep",
                        "pub fn tick() { let t = std::time::Instant::now(); drop(t); }\n",
                    )
                },
            ]
        };
        let out = analyze_graph(&mk(), &[]);
        let f = rules(&out, Rule::DeterminismTaint);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/core/src/machine.rs");
        assert!(f[0].blame.len() >= 2);

        let allow = [AllowEntry {
            rule: "determinism-taint".to_string(),
            path: "crates/core/src/machine.rs#drive".to_string(),
            token: "std::time".to_string(),
        }];
        let out = analyze_graph(&mk(), &allow);
        assert!(rules(&out, Rule::DeterminismTaint).is_empty());
        assert_eq!(out.allowlisted, 1);
    }

    #[test]
    fn lossy_cast_on_address_fires_and_invariant_justifies() {
        let files = [pfile(
            "crates/x/src/lib.rs",
            "x",
            "pub fn bank(addr: u64) -> u32 { (addr >> 6) as u32 }\n\
             pub fn ok(addr: u64) -> u32 {\n    // INVARIANT: bank index fits 8 bits by construction\n    (addr >> 6) as u32\n}\n\
             pub fn fine(count: u64) -> u32 { count as u32 }\n",
        )];
        let out = analyze_graph(&files, &[]);
        let f = rules(&out, Rule::LossyCast);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "as u32");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hot_root_itself_is_left_to_the_local_rule() {
        let files = [pfile(
            "crates/x/src/lib.rs",
            "x",
            "// lint: hot-path\nfn hot() { let v = vec![1]; drop(v); }\n",
        )];
        let out = analyze_graph(&files, &[]);
        assert!(rules(&out, Rule::HotPathTransitive).is_empty());
    }
}
