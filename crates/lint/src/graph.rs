//! Workspace call-graph construction.
//!
//! Nodes are every parsed function in the workspace; edges are call
//! sites resolved **conservatively**: when the receiver type of a
//! method call cannot be pinned down, the edge fans out to every
//! in-workspace method of that name, and `dyn Trait` / trait-default
//! dispatch fans out to every in-workspace impl of the trait. Each edge
//! records whether its resolution was *precise* (unique receiver type
//! known) — the recursion rule only trusts precise edges, while the
//! reachability rules (purity, taint) deliberately consume the
//! over-approximation: for those, a false edge costs a sanctioned
//! finding, a missed edge costs a silent hot-path allocation.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FileItems, FnDef, TypeHint};
use crate::tok::{Tok, TokKind};
use crate::{DetScope, TargetKind};

/// One parsed file, as handed to the graph builder.
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Crate directory name (`os`, `cache`, …; `""` for the root).
    pub crate_name: String,
    /// Determinism scope of the owning crate.
    pub det: DetScope,
    /// Target classification of the file.
    pub target: TargetKind,
    pub toks: Vec<Tok>,
    pub items: FileItems,
}

/// A function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning [`ParsedFile`].
    pub file_idx: usize,
    /// Workspace-relative file path (denormalized for findings).
    pub file: String,
    pub crate_name: String,
    pub def: FnDef,
    /// Display path: `chameleon_os::guidance::GuidanceEngine::record`.
    pub fqn: String,
    /// Allowlist scope: `file#Type::name` or `file#name`.
    pub scope: String,
}

/// One call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: usize,
    /// Resolution was unambiguous (same-type/self/use-resolved); only
    /// these edges feed the recursion rule.
    pub precise: bool,
}

/// The workspace call graph.
pub struct Graph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<Vec<Edge>>,
    /// Crates that contributed at least one node (coverage check).
    pub crates_covered: BTreeSet<String>,
}

impl Graph {
    /// Builds the graph over all parsed files.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut nodes: Vec<FnNode> = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            for def in &pf.items.fns {
                let mut path_parts: Vec<String> = vec![crate_ident(&pf.crate_name)];
                path_parts.extend(file_module(&pf.rel_path));
                path_parts.extend(def.modules.iter().cloned());
                let local = match &def.owner {
                    Some(o) => format!("{}::{}", o.type_name, def.name),
                    None => def.name.clone(),
                };
                path_parts.push(local.clone());
                nodes.push(FnNode {
                    file_idx,
                    file: pf.rel_path.clone(),
                    crate_name: pf.crate_name.clone(),
                    def: def.clone(),
                    fqn: path_parts.join("::"),
                    scope: format!("{}#{}", pf.rel_path, local),
                });
            }
        }

        let index = Index::build(files, &nodes);
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let pf = &files[node.file_idx];
            for call in extract_calls(&pf.toks, node.def.body.clone()) {
                let (targets, precise) = index.resolve(&call, node, pf, &nodes);
                for to in targets {
                    // A name-fallback self-edge (`x.step()` resolving back
                    // to the enclosing `step` through the conservative
                    // method index) is almost always resolution noise:
                    // keep it for reachability, but never as precise, so
                    // the recursion rule ignores it.
                    let precise =
                        precise && !(to == id && matches!(call.kind, CallKind::Method(_)));
                    edges[id].push(Edge {
                        to,
                        line: call.line,
                        precise,
                    });
                }
            }
            // Dedup parallel edges to the same target, keeping the most
            // precise one (findings only need one witness line).
            edges[id].sort_by_key(|e| (e.to, std::cmp::Reverse(e.precise), e.line));
            edges[id].dedup_by_key(|e| e.to);
        }

        let crates_covered = nodes.iter().map(|n| n.crate_name.clone()).collect();
        Graph {
            nodes,
            edges,
            crates_covered,
        }
    }

    /// Total edge count (after dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// The crate ident a path would use (`chameleon_os` for `os`, plain
/// `chameleon` for the root facade).
pub fn crate_ident(crate_name: &str) -> String {
    if crate_name.is_empty() {
        "chameleon".to_string()
    } else {
        format!("chameleon_{crate_name}")
    }
}

/// Module path a file contributes (`crates/os/src/guidance.rs` →
/// `["guidance"]`; `lib.rs`/`main.rs`/`mod.rs` → `[]`).
fn file_module(rel_path: &str) -> Vec<String> {
    let mut segs: Vec<&str> = rel_path.split('/').collect();
    let Some(file) = segs.pop() else {
        return Vec::new();
    };
    let mut mods: Vec<String> = Vec::new();
    let mut seen_src = false;
    for s in segs {
        if s == "src" || s == "tests" || s == "benches" || s == "examples" {
            seen_src = true;
            mods.clear();
            continue;
        }
        if seen_src && s != "bin" {
            mods.push(s.to_string());
        }
    }
    let stem = file.trim_end_matches(".rs");
    if !matches!(stem, "lib" | "main" | "mod") {
        mods.push(stem.to_string());
    }
    mods
}

/// How a call site spelled its callee.
#[derive(Debug, Clone)]
enum CallKind {
    /// `name(…)`.
    Direct,
    /// `a::b::name(…)` — segments exclude the final name.
    Path(Vec<String>),
    /// `.name(…)` with the classified receiver.
    Method(Receiver),
}

#[derive(Debug, Clone)]
enum Receiver {
    /// `self.name(…)`.
    SelfDirect,
    /// `self.f1.f2….name(…)` — the field chain, outermost first.
    SelfFields(Vec<String>),
    /// Anything else (`local.name(…)`, `expr().name(…)`).
    Unknown,
}

#[derive(Debug, Clone)]
struct Call {
    name: String,
    kind: CallKind,
    line: usize,
}

/// Keywords that look like `ident (` but are not calls, plus enum-ish
/// constructors we never want edges for.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn", "let",
    "mut", "ref", "box", "await", "yield", "where", "impl", "dyn", "unsafe", "Some", "Ok", "Err",
    "None",
];

/// Extracts call sites from a body token range.
fn extract_calls(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<Call> {
    let mut calls = Vec::new();
    let mut j = body.start;
    while j < body.end {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        // Look past an optional turbofish for the opening paren:
        // `name::<T>(…)` / `name(…)`.
        let mut after = j + 1;
        if toks.get(after).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 2).is_some_and(|t| t.is_punct('<'))
        {
            after = skip_generics_from(toks, after + 2, body.end);
        }
        let is_call = toks.get(after).is_some_and(|t| t.is_punct('('));
        if !is_call || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        let prev = j.checked_sub(1).and_then(|p| toks.get(p));
        let prev2 = j.checked_sub(2).and_then(|p| toks.get(p));
        if prev.is_some_and(|t| t.is_ident("fn")) {
            // A nested `fn` definition's own name.
            j = after + 1;
            continue;
        }
        let call = if prev.is_some_and(|t| t.is_punct('.')) {
            Call {
                name: t.text.clone(),
                kind: CallKind::Method(classify_receiver(toks, j - 1, body.start)),
                line: t.line,
            }
        } else if prev.is_some_and(|t| t.is_punct(':')) && prev2.is_some_and(|t| t.is_punct(':')) {
            let segs = path_segments_before(toks, j - 2, body.start);
            Call {
                name: t.text.clone(),
                kind: CallKind::Path(segs),
                line: t.line,
            }
        } else {
            Call {
                name: t.text.clone(),
                kind: CallKind::Direct,
                line: t.line,
            }
        };
        calls.push(call);
        j = after + 1;
    }
    calls
}

/// Classifies the receiver ending at the `.` token index `dot`.
fn classify_receiver(toks: &[Tok], dot: usize, floor: usize) -> Receiver {
    // Walk back through `self (. ident)*`; anything else — call results,
    // index expressions, locals — is Unknown.
    let mut fields: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        let Some(prev_idx) = i.checked_sub(1).filter(|p| *p >= floor) else {
            return Receiver::Unknown;
        };
        let prev = &toks[prev_idx];
        if prev.kind != TokKind::Ident {
            return Receiver::Unknown;
        }
        if prev.is_ident("self") {
            fields.reverse();
            return if fields.is_empty() {
                Receiver::SelfDirect
            } else {
                Receiver::SelfFields(fields)
            };
        }
        fields.push(prev.text.clone());
        let Some(p2) = prev_idx.checked_sub(1).filter(|p| *p >= floor) else {
            return Receiver::Unknown;
        };
        if !toks[p2].is_punct('.') {
            return Receiver::Unknown;
        }
        i = p2;
    }
}

/// Collects `a::b::` path segments ending at the `::` whose second `:`
/// sits at `colon2` (exclusive of the callee name).
fn path_segments_before(toks: &[Tok], colon2: usize, floor: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut first_colon = colon2.saturating_sub(1);
    while let Some(prev_idx) = first_colon.checked_sub(1).filter(|p| *p >= floor) {
        let prev = &toks[prev_idx];
        if prev.kind != TokKind::Ident {
            // `<T as Trait>::f` and friends: give up on qualified paths.
            break;
        }
        segs.push(prev.text.clone());
        let Some(c2) = prev_idx.checked_sub(1).filter(|p| *p >= floor) else {
            break;
        };
        let Some(c1) = c2.checked_sub(1).filter(|p| *p >= floor) else {
            break;
        };
        if !(toks[c2].is_punct(':') && toks[c1].is_punct(':')) {
            break;
        }
        first_colon = c1;
    }
    segs.reverse();
    segs
}

fn skip_generics_from(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Cross-file resolution indexes.
struct Index {
    /// Free functions by bare name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Free functions by (file, name) — same-file resolution first.
    free_by_file: BTreeMap<(usize, String), Vec<usize>>,
    /// Impl/trait methods by bare name (non-test only).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by (type name, method name).
    methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by (trait name, method name) over impls of that trait,
    /// plus trait-decl defaults.
    methods_by_trait: BTreeMap<(String, String), Vec<usize>>,
    /// Struct field types by (type name, field name).
    fields: BTreeMap<(String, String), TypeHint>,
    /// Traits implemented per type name.
    traits_of_type: BTreeMap<String, Vec<String>>,
}

impl Index {
    fn build(files: &[ParsedFile], nodes: &[FnNode]) -> Index {
        let mut ix = Index {
            free_by_name: BTreeMap::new(),
            free_by_file: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            methods_by_type: BTreeMap::new(),
            methods_by_trait: BTreeMap::new(),
            fields: BTreeMap::new(),
            traits_of_type: BTreeMap::new(),
        };
        for (id, n) in nodes.iter().enumerate() {
            if n.def.in_test {
                continue; // test helpers never back production edges
            }
            match &n.def.owner {
                None => {
                    ix.free_by_name
                        .entry(n.def.name.clone())
                        .or_default()
                        .push(id);
                    ix.free_by_file
                        .entry((n.file_idx, n.def.name.clone()))
                        .or_default()
                        .push(id);
                }
                Some(o) => {
                    ix.methods_by_name
                        .entry(n.def.name.clone())
                        .or_default()
                        .push(id);
                    // Trait-decl items (defaults and body-less required
                    // methods) are dispatch targets via the trait index
                    // only; putting them in the typed index would let a
                    // decl's empty body shadow the real impls.
                    if !o.in_trait_decl {
                        ix.methods_by_type
                            .entry((o.type_name.clone(), n.def.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    if let Some(tr) = &o.trait_name {
                        ix.methods_by_trait
                            .entry((tr.clone(), n.def.name.clone()))
                            .or_default()
                            .push(id);
                        if !o.in_trait_decl {
                            let ts = ix.traits_of_type.entry(o.type_name.clone()).or_default();
                            if !ts.contains(tr) {
                                ts.push(tr.clone());
                            }
                        }
                    }
                }
            }
        }
        for pf in files {
            for s in &pf.items.structs {
                for (field, hint) in &s.fields {
                    ix.fields
                        .insert((s.name.clone(), field.clone()), hint.clone());
                }
            }
        }
        ix
    }

    /// Resolves one call from `node` to target node ids plus a precision
    /// flag.
    fn resolve(
        &self,
        call: &Call,
        node: &FnNode,
        pf: &ParsedFile,
        nodes: &[FnNode],
    ) -> (Vec<usize>, bool) {
        match &call.kind {
            CallKind::Direct => {
                if let Some(ids) = self.free_by_file.get(&(node.file_idx, call.name.clone())) {
                    return (ids.clone(), ids.len() == 1);
                }
                // `use crate_x::mod::f;` then `f(…)` — match the imported
                // path against free-fn FQNs.
                for (alias, path) in &pf.items.uses {
                    if alias == &call.name && path.last().map(String::as_str) == Some(&call.name) {
                        let ids = self.free_fns_matching_path(path, nodes);
                        if !ids.is_empty() {
                            let precise = ids.len() == 1;
                            return (ids, precise);
                        }
                    }
                }
                // Same-crate free fn (sibling module, re-export).
                if let Some(ids) = self.free_by_name.get(&call.name) {
                    let in_crate: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| nodes[id].crate_name == node.crate_name)
                        .collect();
                    if !in_crate.is_empty() {
                        let precise = in_crate.len() == 1;
                        return (in_crate, precise);
                    }
                }
                (Vec::new(), false)
            }
            CallKind::Path(segs) => self.resolve_path_call(segs, &call.name, node, pf, nodes),
            CallKind::Method(recv) => {
                let (mut ids, precise) = self.resolve_method(recv, &call.name, node);
                // `.name(…)` dispatches on a receiver, so associated
                // functions (no `self` param) can never be its target —
                // dropping them keeps iterator adapters like `.all(…)`
                // from fanning out to a workspace `Type::all()`.
                ids.retain(|&id| nodes[id].def.has_self);
                (ids, precise)
            }
        }
    }

    /// Free fns whose FQN ends with the given path (joined on `::`).
    fn free_fns_matching_path(&self, path: &[String], nodes: &[FnNode]) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        let suffix = path.join("::");
        self.free_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| fqn_has_suffix(&nodes[id].fqn, &suffix))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn resolve_path_call(
        &self,
        segs: &[String],
        name: &str,
        node: &FnNode,
        pf: &ParsedFile,
        nodes: &[FnNode],
    ) -> (Vec<usize>, bool) {
        // Expand a leading use-alias and strip `crate`/`self`/`super`.
        let mut segs: Vec<String> = segs.to_vec();
        while segs
            .first()
            .is_some_and(|s| s == "crate" || s == "self" || s == "super")
        {
            segs.remove(0);
        }
        if let Some(first) = segs.first().cloned() {
            for (alias, path) in &pf.items.uses {
                if *alias == first {
                    let mut expanded = path.clone();
                    expanded.extend(segs.iter().skip(1).cloned());
                    segs = expanded;
                    break;
                }
            }
        }

        // `Type::method` / `Self::method` / `Trait::method`.
        if let Some(last) = segs.last() {
            let type_name = if last == "Self" {
                node.def.owner.as_ref().map(|o| o.type_name.clone())
            } else {
                Some(last.clone())
            };
            if let Some(ty) = type_name {
                if let Some(ids) = self.methods_by_type.get(&(ty.clone(), name.to_string())) {
                    return (ids.clone(), ids.len() == 1);
                }
                if let Some(ids) = self.methods_by_trait.get(&(ty, name.to_string())) {
                    return (ids.clone(), false);
                }
            }
        }

        // Module-pathed free fn: `guidance::decay(…)`, `chameleon_os::boot(…)`.
        let mut full = segs.clone();
        full.push(name.to_string());
        let matched = self.free_fns_matching_path(&full, nodes);
        if !matched.is_empty() {
            let precise = matched.len() == 1;
            return (matched, precise);
        }
        // Fall back to any free fn of this name (re-exports or renamed
        // segments the suffix match can't see).
        if let Some(ids) = self.free_by_name.get(name) {
            return (ids.clone(), ids.len() == 1);
        }
        (Vec::new(), false)
    }

    fn resolve_method(&self, recv: &Receiver, name: &str, node: &FnNode) -> (Vec<usize>, bool) {
        match recv {
            Receiver::SelfDirect => {
                if let Some(o) = &node.def.owner {
                    if let Some(ids) = self
                        .methods_by_type
                        .get(&(o.type_name.clone(), name.to_string()))
                    {
                        return (ids.clone(), ids.len() == 1);
                    }
                    // Inside a trait decl, or an impl that inherits a
                    // default: every impl of the trait plus the default
                    // body — conservative dispatch.
                    if let Some(tr) = &o.trait_name {
                        if let Some(ids) =
                            self.methods_by_trait.get(&(tr.clone(), name.to_string()))
                        {
                            return (ids.clone(), false);
                        }
                    }
                    // A default method from some trait the type impls.
                    if let Some(traits) = self.traits_of_type.get(&o.type_name) {
                        let mut ids: Vec<usize> = Vec::new();
                        for tr in traits {
                            if let Some(m) =
                                self.methods_by_trait.get(&(tr.clone(), name.to_string()))
                            {
                                ids.extend(m.iter().copied());
                            }
                        }
                        if !ids.is_empty() {
                            ids.sort_unstable();
                            ids.dedup();
                            return (ids, false);
                        }
                    }
                }
                (Vec::new(), false)
            }
            Receiver::SelfFields(fields) => {
                let Some(owner) = node.def.owner.as_ref() else {
                    return self.all_methods(name);
                };
                // Fold the field chain through struct field types.
                let mut hint = TypeHint::Concrete(owner.type_name.clone());
                for f in fields {
                    let TypeHint::Concrete(ty) = &hint else {
                        return self.all_methods(name);
                    };
                    match self.fields.get(&(ty.clone(), f.clone())) {
                        Some(h) => hint = h.clone(),
                        None => return self.all_methods(name),
                    }
                }
                match hint {
                    TypeHint::Concrete(ty) => {
                        if let Some(ids) = self.methods_by_type.get(&(ty.clone(), name.to_string()))
                        {
                            (ids.clone(), ids.len() == 1)
                        } else if let Some(traits) = self.traits_of_type.get(&ty) {
                            // Default trait methods inherited by `ty`.
                            let mut ids: Vec<usize> = Vec::new();
                            for tr in traits {
                                if let Some(m) =
                                    self.methods_by_trait.get(&(tr.clone(), name.to_string()))
                                {
                                    ids.extend(m.iter().copied());
                                }
                            }
                            ids.sort_unstable();
                            ids.dedup();
                            (ids, false)
                        } else {
                            // A std/vendor type: no workspace edges — the
                            // precision that keeps `Vec::push` quiet.
                            (Vec::new(), true)
                        }
                    }
                    TypeHint::DynTrait(tr) => {
                        let ids = self
                            .methods_by_trait
                            .get(&(tr, name.to_string()))
                            .cloned()
                            .unwrap_or_default();
                        (ids, false)
                    }
                    TypeHint::Unknown => self.all_methods(name),
                }
            }
            Receiver::Unknown => self.all_methods(name),
        }
    }

    /// The conservative fallback: every non-test method of this name.
    fn all_methods(&self, name: &str) -> (Vec<usize>, bool) {
        (
            self.methods_by_name.get(name).cloned().unwrap_or_default(),
            false,
        )
    }
}

/// `fqn` ends with `suffix` on a `::` segment boundary.
fn fqn_has_suffix(fqn: &str, suffix: &str) -> bool {
    fqn == suffix
        || fqn
            .strip_suffix(suffix)
            .is_some_and(|head| head.ends_with("::"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::tok::tokenize;

    fn file(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        let toks = tokenize(src);
        let items = parse_items(&toks);
        ParsedFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            det: DetScope::Strict,
            target: TargetKind::Lib,
            toks,
            items,
        }
    }

    fn node_id(g: &Graph, fqn_suffix: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| fqn_has_suffix(&n.fqn, fqn_suffix))
            .unwrap_or_else(|| panic!("no node matching {fqn_suffix}"))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        let f = node_id(g, from);
        let t = node_id(g, to);
        g.edges[f].iter().any(|e| e.to == t)
    }

    #[test]
    fn direct_and_self_calls_resolve() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "fn helper() {}\n\
             struct S;\n\
             impl S {\n  fn run(&self) { helper(); self.step(); }\n  fn step(&self) {}\n}\n",
        )];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "S::run", "helper"));
        assert!(has_edge(&g, "S::run", "S::step"));
        let f = node_id(&g, "S::run");
        assert!(g.edges[f].iter().all(|e| e.precise));
    }

    #[test]
    fn field_typed_receiver_resolves_precisely() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "struct Inner;\nimpl Inner { fn tick(&self) {} }\n\
             struct Outer { inner: Inner }\n\
             impl Outer { fn go(&self) { self.inner.tick(); } }\n\
             struct Other;\nimpl Other { fn tick(&self) {} }\n",
        )];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "Outer::go", "Inner::tick"));
        // Typed lookup must NOT fan out to Other::tick.
        assert!(!has_edge(&g, "Outer::go", "Other::tick"));
    }

    #[test]
    fn dyn_trait_field_fans_out_to_all_impls() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "trait Plug { fn fire(&self); }\n\
             struct A;\nimpl Plug for A { fn fire(&self) {} }\n\
             struct B;\nimpl Plug for B { fn fire(&self) {} }\n\
             struct Host { plug: Box<dyn Plug> }\n\
             impl Host { fn go(&self) { self.plug.fire(); } }\n",
        )];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "Host::go", "A::fire"));
        assert!(has_edge(&g, "Host::go", "B::fire"));
        let f = node_id(&g, "Host::go");
        assert!(g.edges[f].iter().all(|e| !e.precise));
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let files = [
            file(
                "crates/os/src/guidance.rs",
                "os",
                "pub fn decay(x: u64) -> u64 { x }\n",
            ),
            file(
                "src/system.rs",
                "",
                "use chameleon_os::guidance;\n\
                 pub fn step() { guidance::decay(1); }\n",
            ),
        ];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "system::step", "guidance::decay"));
    }

    #[test]
    fn use_imported_fn_resolves() {
        let files = [
            file("crates/os/src/kernel.rs", "os", "pub fn boot() {}\n"),
            file(
                "src/main.rs",
                "",
                "use chameleon_os::kernel::boot;\nfn main() { boot(); }\n",
            ),
        ];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "main", "kernel::boot"));
    }

    #[test]
    fn unknown_receiver_fans_out_conservatively() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "struct A;\nimpl A { fn poke(&self) {} }\n\
             struct B;\nimpl B { fn poke(&self) {} }\n\
             fn drive(v: &A) { v.poke(); }\n",
        )];
        let g = Graph::build(&files);
        // `v` is a local — conservative fan-out hits both.
        assert!(has_edge(&g, "drive", "A::poke"));
        assert!(has_edge(&g, "drive", "B::poke"));
    }

    #[test]
    fn test_fns_are_excluded_from_targets() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  fn prod() { panic!(); }\n}\n\
             fn call() { prod(); }\n",
        )];
        let g = Graph::build(&files);
        let f = node_id(&g, "call");
        assert_eq!(g.edges[f].len(), 1);
        let tgt = &g.nodes[g.edges[f][0].to];
        assert!(!tgt.def.in_test);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "fn assert_eq() {}\nfn f() { assert_eq!(1, 1); }\n",
        )];
        let g = Graph::build(&files);
        let f = node_id(&g, "f");
        assert!(g.edges[f].is_empty(), "macro `!` must break the call match");
    }

    #[test]
    fn turbofish_calls_resolve() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "fn conv(x: u64) -> u64 { x }\nfn f() { conv::<u32>(seed()); }\nfn seed() -> u64 { 0 }\n",
        )];
        let g = Graph::build(&files);
        assert!(has_edge(&g, "f", "conv"));
        assert!(has_edge(&g, "f", "seed"));
    }

    #[test]
    fn trait_default_method_fans_out_from_self_call() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "trait T {\n  fn leaf(&self);\n  fn outer(&self) { self.leaf(); }\n}\n\
             struct A;\nimpl T for A { fn leaf(&self) {} }\n",
        )];
        let g = Graph::build(&files);
        // The default body's self.leaf() must reach A::leaf.
        assert!(has_edge(&g, "T::outer", "A::leaf"));
    }

    #[test]
    fn recursion_self_edge_is_precise_for_direct_call() {
        let files = [file(
            "crates/x/src/lib.rs",
            "x",
            "fn walk(n: u64) -> u64 { if n == 0 { 0 } else { walk(n - 1) } }\n",
        )];
        let g = Graph::build(&files);
        let f = node_id(&g, "walk");
        assert!(g.edges[f].iter().any(|e| e.to == f && e.precise));
    }
}
