#![forbid(unsafe_code)]
//! `chameleon-lint` CLI.
//!
//! ```text
//! chameleon-lint [--root PATH] [--json] [--sarif PATH] [--baseline PATH]
//!                [--allowlist PATH] [--write-baseline] [--check-all]
//! ```
//!
//! Exit codes: `0` clean (all findings baselined), `1` new findings or
//! stale baseline entries, `2` usage or I/O error. `--check-all` also
//! runs `cargo fmt --check` and `cargo clippy` first and folds their
//! exit status in.

use std::path::PathBuf;
use std::process::ExitCode;

use chameleon_lint::{
    apply_baseline, load_allowlist, load_baseline, scan_workspace, to_sarif, workspace_root_from,
    write_baseline, Finding,
};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    sarif: Option<PathBuf>,
    baseline: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    write: bool,
    check_all: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        sarif: None,
        baseline: None,
        allowlist: None,
        write: false,
        check_all: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--write-baseline" => args.write = true,
            "--check-all" => args.check_all = true,
            "--root" => args.root = Some(PathBuf::from(next_value(&mut it, "--root")?)),
            "--sarif" => args.sarif = Some(PathBuf::from(next_value(&mut it, "--sarif")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(next_value(&mut it, "--baseline")?)),
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(next_value(&mut it, "--allowlist")?))
            }
            "--help" | "-h" => {
                println!(
                    "chameleon-lint: workspace invariant linter\n\n\
                     USAGE: chameleon-lint [--root PATH] [--json] [--sarif PATH]\n\
                    \x20                     [--baseline PATH] [--allowlist PATH]\n\
                    \x20                     [--write-baseline] [--check-all]\n\n\
                     Local rules:  hot-path-alloc, determinism, panic-policy,\n\
                    \x20              unsafe-forbid\n\
                     Graph rules:  hot-path-transitive, determinism-taint,\n\
                    \x20              hot-path-recursion, lossy-cast, dead-metric\n\n\
                     --sarif PATH   also write a SARIF 2.1.0 report\n\
                     --check-all    run cargo fmt --check and cargo clippy first\n\
                     (see DESIGN.md sections 13 and 18)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chameleon-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace_root_from(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("chameleon-lint: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("crates/lint/baseline.txt"));
    let allowlist_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("crates/lint/allowlist.txt"));

    // --check-all front-runs the cargo-native checks so `cargo lint
    // --check-all` is the one entry point CI and humans share.
    let mut cargo_checks_failed = false;
    if args.check_all {
        for (label, cargo_args) in [
            ("cargo fmt --check", &["fmt", "--check"][..]),
            (
                "cargo clippy",
                &["clippy", "--workspace", "--", "-D", "warnings"][..],
            ),
        ] {
            eprintln!("chameleon-lint: running {label}");
            match std::process::Command::new("cargo")
                .args(cargo_args)
                .current_dir(&root)
                .status()
            {
                Ok(s) if s.success() => {}
                Ok(_) => {
                    eprintln!("chameleon-lint: {label} failed");
                    cargo_checks_failed = true;
                }
                Err(e) => {
                    eprintln!("chameleon-lint: could not run {label}: {e}");
                    cargo_checks_failed = true;
                }
            }
        }
    }

    let run = || -> std::io::Result<ExitCode> {
        let allowlist = load_allowlist(&allowlist_path)?;
        let report = scan_workspace(&root, &allowlist)?;

        if args.write {
            write_baseline(&baseline_path, &report.findings)?;
            eprintln!(
                "chameleon-lint: wrote {} baseline entries to {}",
                report.findings.len(),
                baseline_path.display()
            );
            return Ok(ExitCode::SUCCESS);
        }

        let baseline = load_baseline(&baseline_path)?;
        let (new, baselined, stale) = apply_baseline(&report.findings, &baseline);

        if let Some(sarif_path) = &args.sarif {
            let new_keys: Vec<&str> = new.iter().map(|f| f.key.as_str()).collect();
            std::fs::write(sarif_path, to_sarif(&report.findings, &new_keys))?;
            eprintln!(
                "chameleon-lint: wrote SARIF report to {}",
                sarif_path.display()
            );
        }

        if args.json {
            print_json(&report.findings, &new, &stale, report.files_scanned);
        } else {
            print_human(&new, &baselined, &stale, report.files_scanned);
        }

        Ok(
            if new.is_empty() && stale.is_empty() && !cargo_checks_failed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            },
        )
    };

    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("chameleon-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_human(new: &[&Finding], baselined: &[&Finding], stale: &[String], files: usize) {
    for f in new {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message);
    }
    for f in baselined {
        println!(
            "{}:{}: [{}] {} (baselined)",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
    }
    for k in stale {
        println!("stale baseline entry (remove it or run --write-baseline): {k}");
    }
    println!(
        "chameleon-lint: {} files scanned, {} new finding(s), {} baselined, {} stale baseline entr(ies)",
        files,
        new.len(),
        baselined.len(),
        stale.len()
    );
}

fn print_json(all: &[Finding], new: &[&Finding], stale: &[String], files: usize) {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files},\n"));
    out.push_str(&format!("  \"new_count\": {},\n", new.len()));
    out.push_str(&format!(
        "  \"baselined_count\": {},\n",
        all.len() - new.len()
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in all.iter().enumerate() {
        let is_new = new.iter().any(|n| std::ptr::eq(*n, f));
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"token\": {}, \"message\": {}, \"key\": {}, \"new\": {}}}{}\n",
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            json_str(&f.token),
            json_str(&f.message),
            json_str(&f.key),
            is_new,
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stale_baseline\": [");
    for (i, k) in stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(k));
    }
    out.push_str("]\n}");
    println!("{out}");
}

/// Minimal JSON string escaping (the linter is dependency-free by
/// design, so no serde here).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
