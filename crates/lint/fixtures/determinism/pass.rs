//! Fixture: the deterministic equivalent — ordered map iteration and
//! simulated cycle counts instead of wall-clock reads.

use std::collections::BTreeMap;

pub struct Tracker {
    pages: BTreeMap<u64, u32>,
    now_cycles: u64,
}

pub fn snapshot(t: &Tracker) -> (u64, u64) {
    let mut sum = 0u64;
    for (page, count) in t.pages.iter() {
        sum += page + u64::from(*count);
    }
    (sum, t.now_cycles)
}
