//! Fixture: wall-clock, hash-order iteration, and ad-hoc host threading
//! in sim code (must fail).

use std::collections::HashMap;
use std::time::Instant;

pub struct Tracker {
    pages: HashMap<u64, u32>,
}

pub fn snapshot(t: &Tracker) -> (u64, u128) {
    let start = Instant::now();
    let mut sum = 0u64;
    for (page, count) in t.pages.iter() {
        sum += page + u64::from(*count);
    }
    (sum, start.elapsed().as_nanos())
}

pub fn racy_sum(values: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| values.iter().sum::<u64>());
        total = h.join().unwrap_or(0);
    });
    total
}
