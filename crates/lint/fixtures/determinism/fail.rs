//! Fixture: wall-clock and hash-order iteration in sim code (must fail).

use std::collections::HashMap;
use std::time::Instant;

pub struct Tracker {
    pages: HashMap<u64, u32>,
}

pub fn snapshot(t: &Tracker) -> (u64, u128) {
    let start = Instant::now();
    let mut sum = 0u64;
    for (page, count) in t.pages.iter() {
        sum += page + u64::from(*count);
    }
    (sum, start.elapsed().as_nanos())
}
