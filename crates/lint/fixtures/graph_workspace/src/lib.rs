#![forbid(unsafe_code)]
//! Graph-fixture facade: the hot root whose reachability seeds the
//! transitive passes. The violations live two crates away — v1's
//! per-file scan cannot see any of them from here.

pub struct System {
    pub engine: Engine,
}

pub struct Engine;

impl System {
    // lint: hot-path
    pub fn access(&mut self, addr: u64) -> u64 {
        self.engine.step(addr)
    }
}

impl Engine {
    pub fn step(&mut self, addr: u64) -> u64 {
        chameleon_core::helper(addr)
    }
}
