#![forbid(unsafe_code)]
//! Strict sim crate with violations only a call-graph pass can tie to
//! the hot root: a helper-of-a-helper allocation, a lossy address cast,
//! unbounded recursion, and a wall-clock leak through the sweep crate.

pub fn helper(addr: u64) -> u64 {
    deeper(addr)
}

fn deeper(addr: u64) -> u64 {
    let v: Vec<u64> = vec![addr];
    let small = addr as u32;
    walk(v.len() as u64 + u64::from(small)) + justified(addr)
}

fn walk(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        walk(n - 1)
    }
}

pub fn justified(addr: u64) -> u64 {
    // INVARIANT: epoch-boundary staging, amortized off the hot path.
    let v: Vec<u64> = vec![addr];
    v[0]
}

pub fn timestamp() -> u64 {
    chameleon_sweep::progress_now()
}

pub fn publish(reg: &mut Registry) {
    reg.set_counter("core.hits", 1);
    reg.set_counter("core.dead", 2);
}

pub struct Registry;

impl Registry {
    pub fn set_counter(&mut self, _name: &str, _v: u64) {}
}
