#![forbid(unsafe_code)]
//! Allowlisted-scope crate: wall-clock here is sanctioned per-use for
//! the v1 local rule, but it taints every strict-crate caller.

pub fn progress_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
