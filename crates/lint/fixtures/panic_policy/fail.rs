//! Fixture: unjustified panic sites in library code (must fail).

pub fn lookup(xs: &[u64], i: usize) -> u64 {
    let first = *xs.first().unwrap();
    let item = *xs.get(i).expect("index in range");
    if first > item {
        panic!("unordered");
    }
    item
}
