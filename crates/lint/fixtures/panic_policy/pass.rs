//! Fixture: every panic site carries an adjacent justification, and
//! `#[cfg(test)]` modules are exempt.

pub fn lookup(xs: &[u64], i: usize) -> u64 {
    // INVARIANT: xs is non-empty; validated at configuration load.
    let first = *xs.first().unwrap();
    // INVARIANT: i is reduced modulo xs.len() by every caller.
    let item = *xs.get(i).expect("index in range");
    first.wrapping_add(item)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unchecked_unwrap_is_fine_in_tests() {
        let v = [1u64, 2];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
