//! Fixture: allocation inside an annotated hot-path body (must fail).

pub struct Stats {
    samples: Vec<u64>,
}

// lint: hot-path
pub fn access(stats: &mut Stats, addr: u64) -> u64 {
    let v = vec![addr; 4];
    let boxed = Box::new(addr);
    let label = format!("{addr}");
    stats.samples = v;
    *boxed + label.len() as u64
}
