//! Fixture: a clean hot-path body; allocation outside any annotated
//! function is not this rule's business.

// lint: hot-path
pub fn access(table: &[u64; 64], addr: u64) -> u64 {
    let idx = (addr as usize) & 63;
    table[idx].wrapping_add(addr)
}

pub fn cold_setup() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(1);
    v
}
