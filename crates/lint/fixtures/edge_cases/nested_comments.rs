//! Edge case: Rust block comments nest; tokens inside stay comments.

/* outer /* inner .unwrap() */ still a comment: panic!("x") */
pub fn clean() -> u32 {
    /* multi
       line /* nested Instant::now() */
       tail */
    7
}
