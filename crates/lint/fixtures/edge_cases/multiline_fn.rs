//! Edge case: the hot-path annotation must survive a multi-line
//! signature — the body starts at the brace, not the `fn` line.

// lint: hot-path
pub fn remap_alloc(
    table: &mut Vec<u64>,
    logical: usize,
) -> u64 {
    table.push(logical as u64);
    let v = vec![0u64; 4];
    v[0]
}

pub fn cold(
    n: usize,
) -> Vec<u64> {
    (0..n as u64).collect()
}
