//! Edge case: panic tokens inside raw strings are data, not code.

pub fn doc() -> &'static str {
    r#"call .unwrap() and panic!("boom") at your peril"#
}

pub fn doc_with_guards() -> &'static str {
    r##"nested "quote # guard" plus .expect("x") and vec![1]"##
}
