//! Edge case: `#[cfg(test)]` modules inside a library file are exempt
//! from every line rule, even with a hot-path function above them.

// lint: hot-path
pub fn access(x: u64) -> u64 {
    x.wrapping_mul(3)
}

#[cfg(test)]
mod tests {
    use super::access;

    #[test]
    fn scratch_allocations_are_fine_here() {
        let v = vec![access(1), access(2)];
        assert_eq!(*v.first().unwrap(), 3);
    }
}
