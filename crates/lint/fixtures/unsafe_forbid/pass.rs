//! Fixture: crate root carrying the forbid attribute (must pass).
#![forbid(unsafe_code)]

pub fn noop() {}
