//! Fixture: crate root missing the forbid attribute (must fail). The
//! commented-out copy below must not count:
// #![forbid(unsafe_code)]

pub fn noop() {}
