//! The scenario driver: time-slices many jobs over the simulated cores.
//!
//! One persistent [`MultiCore`] and one persistent [`System`] carry the
//! whole scenario; each scheduling round binds up to `cores` runnable
//! jobs (latency-sensitive first, then FIFO), lends their long-lived
//! instruction streams to the cores for one quantum, and charges every
//! job the cycles its core advanced. Arrival and exit churn flow through
//! the OS (`spawn`/`exit` with `ISA-Alloc`/`ISA-Free` notifications), so
//! the memory system sees consolidation pressure, not a steady state.

use std::collections::BTreeMap;

use chameleon::{Architecture, ScaledParams, System, SystemReport};
use chameleon_cpu::{InstructionStream, MultiCore, Op, RunReport};
use chameleon_os::Pid;
use chameleon_simkit::Cycle;
use chameleon_workloads::{AppSpec, AppStream, LoopConfig, LoopStream, ZipfConfig, ZipfStream};
use serde::{Deserialize, Serialize};

use crate::job::{generate_jobs, JobCell};
use crate::spec::{ScenarioSpec, TenantClass, WorkloadKind};

/// Write fraction for Zipf tenants (YCSB-style read-mostly point ops).
const ZIPF_WRITE_FRACTION: f64 = 0.3;
/// Write fraction for scan tenants (read-dominated sweeps).
const SCAN_WRITE_FRACTION: f64 = 0.1;

/// A job's long-lived instruction stream.
enum JobStream {
    App(Box<AppStream>),
    Zipf(ZipfStream),
    Scan(LoopStream),
}

impl InstructionStream for JobStream {
    fn next_op(&mut self) -> Option<Op> {
        match self {
            JobStream::App(s) => s.next_op(),
            JobStream::Zipf(s) => s.next_op(),
            JobStream::Scan(s) => s.next_op(),
        }
    }
}

/// An admitted, not-yet-finished job.
struct ActiveJob {
    pid: Pid,
    stream: JobStream,
    done: bool,
}

/// Lends a job's stream to a core for one quantum: ends the slice after
/// `left` instructions, and flags the job done when the underlying
/// stream (the job's whole budget) runs dry.
struct SliceStream<'a> {
    job: &'a mut ActiveJob,
    left: u64,
}

impl InstructionStream for SliceStream<'_> {
    fn next_op(&mut self) -> Option<Op> {
        if self.left == 0 || self.job.done {
            return None;
        }
        match self.job.stream.next_op() {
            Some(op) => {
                let cost = match op {
                    Op::Compute(n) => (n as u64).max(1),
                    Op::Load(_) | Op::Store(_) => 1,
                };
                self.left = self.left.saturating_sub(cost);
                Some(op)
            }
            None => {
                self.job.done = true;
                None
            }
        }
    }
}

/// Per-core stream for one scheduling round; unassigned cores idle.
enum CoreSlot<'a> {
    Idle,
    Busy(SliceStream<'a>),
}

impl InstructionStream for CoreSlot<'_> {
    fn next_op(&mut self) -> Option<Op> {
        match self {
            CoreSlot::Idle => None,
            CoreSlot::Busy(s) => s.next_op(),
        }
    }
}

/// Final per-job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Global job id.
    pub id: usize,
    /// Owning tenant.
    pub tenant: String,
    /// Priority class.
    pub class: TenantClass,
    /// Arrival time (cycles).
    pub arrival: Cycle,
    /// First cycle the job held a core.
    pub first_scheduled: Cycle,
    /// Completion time (cycles).
    pub finish: Cycle,
    /// Cycles of core occupancy charged to the job.
    pub busy_cycles: Cycle,
    /// Scheduling quanta the job consumed.
    pub slices: u64,
    /// `(finish - arrival) / busy_cycles`: 1.0 means the job never
    /// waited; queueing and preemption push it up.
    pub slowdown: f64,
}

/// Slowdown distribution of one priority class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Jobs of this class that completed.
    pub completed: u64,
    /// Median slowdown.
    pub p50_slowdown: f64,
    /// 99th-percentile slowdown (the datacenter tail metric).
    pub p99_slowdown: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
}

impl ClassStats {
    fn from_slowdowns(mut xs: Vec<f64>) -> Self {
        if xs.is_empty() {
            return Self {
                completed: 0,
                p50_slowdown: 0.0,
                p99_slowdown: 0.0,
                mean_slowdown: 0.0,
            };
        }
        xs.sort_by(f64::total_cmp);
        let q = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
        Self {
            completed: xs.len() as u64,
            p50_slowdown: q(0.50),
            p99_slowdown: q(0.99),
            mean_slowdown: xs.iter().sum::<f64>() / xs.len() as f64,
        }
    }
}

/// Everything one scenario run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Architecture label (paper legend spelling).
    pub arch: String,
    /// Scenario seed.
    pub seed: u64,
    /// Per-job timeline, in job-id order.
    pub jobs: Vec<JobOutcome>,
    /// Latency-class slowdown distribution.
    pub latency: ClassStats,
    /// Batch-class slowdown distribution.
    pub batch: ClassStats,
    /// Cycles the stacked node spent above 90% residency.
    pub pressure_cycles: Cycle,
    /// The standard system report (metrics registry included), finalised
    /// from the cumulative core reports.
    pub system: SystemReport,
}

#[derive(Default)]
struct JobState {
    first_scheduled: Option<Cycle>,
    finish: Option<Cycle>,
    busy: Cycle,
    slices: u64,
}

#[derive(Default)]
struct TenantAgg {
    completed: u64,
    samples: u64,
    promoted: u64,
}

fn admit(sys: &mut System, cell: &JobCell, params: &ScaledParams) -> (Pid, JobStream) {
    match &cell.workload {
        WorkloadKind::App { name } => {
            // INVARIANT: ScenarioSpec::validate / the presets only carry
            // Table II names; an invalid one is a driver bug.
            let spec = AppSpec::parse(name)
                .expect("validated application name")
                .scaled(params.footprint_scale);
            let pid = sys.spawn_process(spec.per_copy_footprint());
            let stream = AppStream::new(&spec, cell.instructions, cell.seed);
            (pid, JobStream::App(Box::new(stream)))
        }
        WorkloadKind::Zipf { skew } => {
            let cfg = ZipfConfig {
                footprint: cell.footprint,
                skew: *skew,
                mem_per_kilo: cell.mem_per_kilo,
                write_fraction: ZIPF_WRITE_FRACTION,
            };
            let pid = sys.spawn_process(cell.footprint);
            (
                pid,
                JobStream::Zipf(ZipfStream::new(&cfg, cell.instructions, cell.seed)),
            )
        }
        WorkloadKind::Scan { stride_lines } => {
            let cfg = LoopConfig {
                footprint: cell.footprint,
                stride_lines: *stride_lines,
                mem_per_kilo: cell.mem_per_kilo,
                write_fraction: SCAN_WRITE_FRACTION,
            };
            let pid = sys.spawn_process(cell.footprint);
            (
                pid,
                JobStream::Scan(LoopStream::new(&cfg, cell.instructions, cell.seed)),
            )
        }
    }
}

/// Runs one scenario on one architecture and reports per-job timelines,
/// per-class slowdowns and the standard system report. Deterministic: a
/// pure function of `(arch, params, spec, seed)`.
///
/// # Panics
///
/// Panics if the spec is invalid (unknown application name, sub-page
/// synthetic footprint); call [`ScenarioSpec::by_name`] presets or
/// validate custom specs before running.
pub fn run_scenario(
    arch: Architecture,
    params: &ScaledParams,
    spec: &ScenarioSpec,
    seed: u64,
) -> ScenarioReport {
    let cells = generate_jobs(spec, seed);
    let n_cores = params.cores;
    let mut sys = System::new(arch, params);
    sys.set_workload_name(&format!("scenario:{}", spec.name));
    sys.set_epoch_accesses(spec.epoch_accesses.max(1));
    let mut cores = MultiCore::new(n_cores, params.core);

    let mut active: Vec<Option<ActiveJob>> = (0..cells.len()).map(|_| None).collect();
    let mut state: Vec<JobState> = (0..cells.len()).map(|_| JobState::default()).collect();
    let mut pid_of: Vec<Option<Pid>> = vec![None; cells.len()];
    let mut ready: Vec<usize> = Vec::new();
    let mut next_arrival = 0usize;
    let mut completed = 0usize;
    let mut now: Cycle = 0;
    let mut pressure_cycles: Cycle = 0;
    let mut last_run = RunReport::default();

    while completed < cells.len() {
        if ready.is_empty() {
            // Nothing runnable: the remaining jobs are all future
            // arrivals (every admitted job stays in `ready` until it
            // completes), so jump the scenario clock forward.
            // INVARIANT: completed < cells.len() and ready is empty
            // imply at least one unadmitted cell remains.
            let cell = cells.get(next_arrival).expect("pending arrivals remain");
            now = now.max(cell.arrival);
        }
        while next_arrival < cells.len() && cells[next_arrival].arrival <= now {
            let cell = &cells[next_arrival];
            let (pid, stream) = admit(&mut sys, cell, params);
            pid_of[cell.id] = Some(pid);
            active[cell.id] = Some(ActiveJob {
                pid,
                stream,
                done: false,
            });
            ready.push(cell.id);
            next_arrival += 1;
        }

        // Latency-sensitive jobs first, then FIFO by (arrival, id).
        ready.sort_by_key(|&i| (cells[i].class, cells[i].arrival, i));
        let scheduled: Vec<usize> = ready[..ready.len().min(n_cores)].to_vec();

        // Align every core on the scenario clock, then point the
        // scheduled cores at their tenants.
        for c in 0..n_cores {
            cores.core_mut(c).advance_to(now);
        }
        for (c, &ji) in scheduled.iter().enumerate() {
            // INVARIANT: `ready` only holds admitted, unfinished jobs.
            let pid = active[ji].as_ref().expect("scheduled job is active").pid;
            sys.bind_core(c, pid);
        }

        // Lend the scheduled jobs' streams out for one quantum. A single
        // pass over `active` hands out disjoint mutable borrows.
        let mut lent: Vec<Option<&mut ActiveJob>> = scheduled.iter().map(|_| None).collect();
        for (idx, slot) in active.iter_mut().enumerate() {
            if let Some(pos) = scheduled.iter().position(|&j| j == idx) {
                lent[pos] = slot.as_mut();
            }
        }
        let mut slots: Vec<CoreSlot> = lent
            .into_iter()
            .map(|l| match l {
                Some(job) => CoreSlot::Busy(SliceStream {
                    job,
                    left: spec.quantum.max(1),
                }),
                None => CoreSlot::Idle,
            })
            .collect();
        slots.resize_with(n_cores, || CoreSlot::Idle);

        let run = cores.run(slots, &mut sys);

        // Charge each job its core's advance and retire finished jobs.
        let mut slice_end = now;
        for (c, &ji) in scheduled.iter().enumerate() {
            let clock = run.cores[c].cycles;
            slice_end = slice_end.max(clock);
            let st = &mut state[ji];
            st.busy += clock.saturating_sub(now);
            st.slices += 1;
            if st.first_scheduled.is_none() {
                st.first_scheduled = Some(now);
            }
            let done = active[ji].as_ref().is_some_and(|j| j.done);
            if done {
                st.finish = Some(clock);
                // INVARIANT: the pid was spawned at admission and the
                // job exits exactly once.
                sys.exit_process(active[ji].as_ref().expect("job is active").pid, clock)
                    .expect("scenario pids are live");
                active[ji] = None;
                completed += 1;
            }
        }
        ready.retain(|&ji| active[ji].is_some());

        // Stacked-DRAM pressure: scenario time spent above 90% residency.
        let (resident, capacity) = sys.policy().stacked_residency();
        if capacity > 0 && resident.saturating_mul(10) >= capacity.saturating_mul(9) {
            pressure_cycles += slice_end.saturating_sub(now);
        }
        now = slice_end;
        last_run = run;
    }

    // Per-job outcomes and per-class slowdown distributions.
    let mut outcomes = Vec::with_capacity(cells.len());
    let mut by_class: BTreeMap<TenantClass, Vec<f64>> = BTreeMap::new();
    for cell in &cells {
        let st = &state[cell.id];
        let finish = st.finish.unwrap_or(now);
        let busy = st.busy.max(1);
        let slowdown = finish.saturating_sub(cell.arrival).max(busy) as f64 / busy as f64;
        by_class.entry(cell.class).or_default().push(slowdown);
        outcomes.push(JobOutcome {
            id: cell.id,
            tenant: cell.tenant.clone(),
            class: cell.class,
            arrival: cell.arrival,
            first_scheduled: st.first_scheduled.unwrap_or(cell.arrival),
            finish,
            busy_cycles: st.busy,
            slices: st.slices,
            slowdown,
        });
    }
    let latency =
        ClassStats::from_slowdowns(by_class.remove(&TenantClass::Latency).unwrap_or_default());
    let batch =
        ClassStats::from_slowdowns(by_class.remove(&TenantClass::Batch).unwrap_or_default());

    // Per-tenant aggregation, joining the guidance tier's per-pid
    // profiles back to tenant names.
    let profiles = sys
        .guidance()
        .map(|g| g.tenant_profiles().clone())
        .unwrap_or_default();
    let mut tenants: BTreeMap<String, TenantAgg> = BTreeMap::new();
    for cell in &cells {
        let agg = tenants.entry(cell.tenant.clone()).or_default();
        agg.completed += 1;
        if let Some(p) = pid_of[cell.id].and_then(|pid| profiles.get(&pid)) {
            agg.samples += p.samples;
            agg.promoted += p.promoted;
        }
    }
    let total_promoted: u64 = tenants.values().map(|t| t.promoted).sum();

    // Publish the scenario metric families next to the standard ones.
    let reg = sys.metrics_mut();
    reg.set_counter("scenario.jobs_completed", completed as u64);
    reg.set_gauge("scenario.pressure_cycles", pressure_cycles as f64);
    for (label, stats) in [("latency", &latency), ("batch", &batch)] {
        reg.set_counter(&format!("tenant.class.{label}.completed"), stats.completed);
        reg.set_gauge(
            &format!("tenant.class.{label}.p50_slowdown"),
            stats.p50_slowdown,
        );
        reg.set_gauge(
            &format!("tenant.class.{label}.p99_slowdown"),
            stats.p99_slowdown,
        );
        reg.set_gauge(
            &format!("tenant.class.{label}.mean_slowdown"),
            stats.mean_slowdown,
        );
    }
    for (name, agg) in &tenants {
        reg.set_counter(&format!("tenant.{name}.completed"), agg.completed);
        reg.set_counter(&format!("tenant.{name}.guidance_samples"), agg.samples);
        reg.set_counter(&format!("tenant.{name}.guidance_promotions"), agg.promoted);
        let share = if total_promoted > 0 {
            agg.promoted as f64 / total_promoted as f64
        } else {
            0.0
        };
        reg.set_gauge(&format!("tenant.{name}.stacked_share"), share);
    }

    let system = sys.finalize(last_run);
    ScenarioReport {
        scenario: spec.name.clone(),
        arch: system.arch.clone(),
        seed,
        jobs: outcomes,
        latency,
        batch,
        pressure_cycles,
        system,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ScaledParams {
        ScaledParams::tiny()
    }

    #[test]
    fn small_scenario_completes_every_job() {
        let spec = ScenarioSpec::small();
        let r = run_scenario(Architecture::ChameleonOpt, &tiny_params(), &spec, 7);
        assert_eq!(r.jobs.len(), spec.total_jobs());
        assert_eq!(
            r.latency.completed + r.batch.completed,
            spec.total_jobs() as u64
        );
        for j in &r.jobs {
            assert!(
                j.finish >= j.arrival,
                "job {} finishes after arriving",
                j.id
            );
            assert!(j.busy_cycles > 0, "job {} did work", j.id);
            assert!(j.slowdown >= 1.0, "slowdown is wall over busy");
            assert!(j.slices > 0);
        }
        assert!(r.latency.p99_slowdown >= r.latency.p50_slowdown);
        assert_eq!(r.system.workload, "scenario:small");
    }

    #[test]
    fn scenario_metrics_are_published() {
        let spec = ScenarioSpec::small();
        let r = run_scenario(Architecture::Guided, &tiny_params(), &spec, 7);
        let c = &r.system.metrics.counters;
        assert_eq!(
            c.get("scenario.jobs_completed").copied(),
            Some(spec.total_jobs() as u64)
        );
        assert!(c.contains_key("tenant.class.latency.completed"));
        assert!(c.contains_key("tenant.frontend.completed"));
        assert!(
            c.get("guidance.samples").copied().unwrap_or(0) > 0,
            "guided scenario must sample"
        );
        assert!(
            r.system
                .metrics
                .gauges
                .contains_key("tenant.frontend.stacked_share"),
            "stacked share gauge published"
        );
    }

    #[test]
    fn app_jobs_run_too() {
        let mut spec = ScenarioSpec::small();
        spec.tenants[1].workload = WorkloadKind::App {
            name: "mcf".to_owned(),
        };
        spec.tenants[1].jobs = 4;
        spec.tenants[0].jobs = 4;
        let r = run_scenario(Architecture::Pom, &tiny_params(), &spec, 5);
        assert_eq!(r.jobs.len(), 8);
    }

    #[test]
    fn latency_class_waits_less_under_contention() {
        // Saturate two cores with simultaneous arrivals; the priority
        // scheduler must serve latency jobs ahead of batch jobs.
        let mut spec = ScenarioSpec::small();
        for t in &mut spec.tenants {
            t.arrivals_per_mcycle = 500.0;
            t.jobs = 30;
        }
        let r = run_scenario(Architecture::ChameleonOpt, &tiny_params(), &spec, 11);
        assert!(
            r.latency.p50_slowdown <= r.batch.p50_slowdown,
            "latency p50 {} must not exceed batch p50 {}",
            r.latency.p50_slowdown,
            r.batch.p50_slowdown
        );
    }
}
