//! Scenario description: tenants, their job shapes, arrival rates and
//! priority classes.

use chameleon_simkit::mem::ByteSize;
use serde::{Deserialize, Serialize};

/// Scheduling priority class of a tenant's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TenantClass {
    /// Latency-sensitive: scheduled before any batch job every quantum.
    Latency,
    /// Batch/throughput: runs in whatever capacity is left.
    Batch,
}

impl TenantClass {
    /// Stable lowercase label used in metric names and report tables.
    pub fn label(&self) -> &'static str {
        match self {
            TenantClass::Latency => "latency",
            TenantClass::Batch => "batch",
        }
    }
}

/// What a tenant's jobs execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// A Table II application stream (footprint from the spec, scaled by
    /// the system's footprint scale).
    App {
        /// Application name (`AppSpec::NAMES`).
        name: String,
    },
    /// Zipf-distributed point accesses over the tenant footprint.
    Zipf {
        /// Skew exponent (0 = uniform, ~0.99 = classic hot-spot).
        skew: f64,
    },
    /// Strided loop/scan over the tenant footprint.
    Scan {
        /// Lines skipped per access (1 = dense sweep).
        stride_lines: u32,
    },
}

/// One tenant: a stream of jobs with a common shape and priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name (unique within a scenario; used in metric names).
    pub name: String,
    /// Priority class.
    pub class: TenantClass,
    /// What the jobs execute.
    pub workload: WorkloadKind,
    /// Number of jobs this tenant submits.
    pub jobs: usize,
    /// Poisson arrival rate: expected jobs per million cycles.
    pub arrivals_per_mcycle: f64,
    /// Instruction budget per job.
    pub instructions: u64,
    /// Footprint per job (synthetic workloads; `App` jobs take the
    /// application's own footprint).
    pub footprint: ByteSize,
    /// Memory operations per 1000 instructions (synthetic workloads).
    pub mem_per_kilo: u32,
}

/// A full scenario: the tenant mix plus scheduler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (reports, workload label).
    pub name: String,
    /// Instructions a scheduled job may retire per quantum.
    pub quantum: u64,
    /// LLC misses per metrics/guidance epoch (`System::set_epoch_accesses`).
    pub epoch_accesses: u64,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl ScenarioSpec {
    /// Total jobs across all tenants.
    pub fn total_jobs(&self) -> usize {
        self.tenants.iter().map(|t| t.jobs).sum()
    }

    /// A small smoke scenario: two tenants, a few dozen jobs. Sized so a
    /// debug-mode run finishes in seconds (CI determinism smoke).
    pub fn small() -> Self {
        Self {
            name: "small".to_owned(),
            quantum: 2_000,
            epoch_accesses: 2_000,
            tenants: vec![
                TenantSpec {
                    name: "frontend".to_owned(),
                    class: TenantClass::Latency,
                    workload: WorkloadKind::Zipf { skew: 0.99 },
                    jobs: 12,
                    arrivals_per_mcycle: 40.0,
                    instructions: 4_000,
                    footprint: ByteSize::kib(256),
                    mem_per_kilo: 200,
                },
                TenantSpec {
                    name: "analytics".to_owned(),
                    class: TenantClass::Batch,
                    workload: WorkloadKind::Scan { stride_lines: 2 },
                    jobs: 12,
                    arrivals_per_mcycle: 20.0,
                    instructions: 8_000,
                    footprint: ByteSize::mib(1),
                    mem_per_kilo: 250,
                },
            ],
        }
    }

    /// A consolidated medium scenario: four tenants mixing Table II
    /// applications with synthetic traffic, ~200 jobs.
    pub fn medium() -> Self {
        Self {
            name: "medium".to_owned(),
            quantum: 4_000,
            epoch_accesses: 4_000,
            tenants: vec![
                TenantSpec {
                    name: "frontend".to_owned(),
                    class: TenantClass::Latency,
                    workload: WorkloadKind::Zipf { skew: 0.99 },
                    jobs: 60,
                    arrivals_per_mcycle: 30.0,
                    instructions: 8_000,
                    footprint: ByteSize::kib(512),
                    mem_per_kilo: 200,
                },
                TenantSpec {
                    name: "cache-tier".to_owned(),
                    class: TenantClass::Latency,
                    workload: WorkloadKind::Zipf { skew: 0.6 },
                    jobs: 40,
                    arrivals_per_mcycle: 15.0,
                    instructions: 6_000,
                    footprint: ByteSize::mib(1),
                    mem_per_kilo: 250,
                },
                TenantSpec {
                    name: "analytics".to_owned(),
                    class: TenantClass::Batch,
                    workload: WorkloadKind::Scan { stride_lines: 1 },
                    jobs: 60,
                    arrivals_per_mcycle: 12.0,
                    instructions: 16_000,
                    footprint: ByteSize::mib(2),
                    mem_per_kilo: 300,
                },
                TenantSpec {
                    name: "hpc".to_owned(),
                    class: TenantClass::Batch,
                    workload: WorkloadKind::App {
                        name: "mcf".to_owned(),
                    },
                    jobs: 40,
                    arrivals_per_mcycle: 8.0,
                    instructions: 12_000,
                    footprint: ByteSize::mib(1),
                    mem_per_kilo: 200,
                },
            ],
        }
    }

    /// The thousand-job consolidation scenario the determinism gate runs:
    /// 1,000 Poisson-arriving jobs across four tenants, budgets sized so
    /// even a debug-mode double-run stays cheap.
    pub fn thousand() -> Self {
        Self {
            name: "thousand".to_owned(),
            quantum: 1_000,
            epoch_accesses: 2_000,
            tenants: vec![
                TenantSpec {
                    name: "frontend".to_owned(),
                    class: TenantClass::Latency,
                    workload: WorkloadKind::Zipf { skew: 0.99 },
                    jobs: 400,
                    arrivals_per_mcycle: 200.0,
                    instructions: 1_500,
                    footprint: ByteSize::kib(64),
                    mem_per_kilo: 150,
                },
                TenantSpec {
                    name: "cache-tier".to_owned(),
                    class: TenantClass::Latency,
                    workload: WorkloadKind::Zipf { skew: 0.5 },
                    jobs: 200,
                    arrivals_per_mcycle: 100.0,
                    instructions: 1_000,
                    footprint: ByteSize::kib(32),
                    mem_per_kilo: 150,
                },
                TenantSpec {
                    name: "analytics".to_owned(),
                    class: TenantClass::Batch,
                    workload: WorkloadKind::Scan { stride_lines: 2 },
                    jobs: 300,
                    arrivals_per_mcycle: 120.0,
                    instructions: 2_000,
                    footprint: ByteSize::kib(128),
                    mem_per_kilo: 200,
                },
                TenantSpec {
                    name: "batch-etl".to_owned(),
                    class: TenantClass::Batch,
                    workload: WorkloadKind::Scan { stride_lines: 1 },
                    jobs: 100,
                    arrivals_per_mcycle: 50.0,
                    instructions: 3_000,
                    footprint: ByteSize::kib(64),
                    mem_per_kilo: 250,
                },
            ],
        }
    }

    /// Looks a preset up by name.
    ///
    /// # Errors
    ///
    /// Returns a message listing every valid preset.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "small" => Ok(Self::small()),
            "medium" => Ok(Self::medium()),
            "thousand" => Ok(Self::thousand()),
            _ => Err(format!(
                "unknown scenario {name:?}; accepted: small, medium, thousand"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in ["small", "medium", "thousand"] {
            let s = ScenarioSpec::by_name(name).unwrap();
            assert_eq!(s.name, name);
            assert!(s.total_jobs() > 0);
        }
        let err = ScenarioSpec::by_name("doom").unwrap_err();
        assert!(err.contains("small") && err.contains("thousand"), "{err}");
    }

    #[test]
    fn thousand_preset_has_a_thousand_jobs() {
        assert_eq!(ScenarioSpec::thousand().total_jobs(), 1000);
    }

    #[test]
    fn class_labels_are_stable() {
        assert_eq!(TenantClass::Latency.label(), "latency");
        assert_eq!(TenantClass::Batch.label(), "batch");
    }
}
