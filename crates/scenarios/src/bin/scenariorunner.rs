//! `scenariorunner` — run a multi-tenant scenario across architectures
//! and report per-class slowdowns.
//!
//! ```text
//! scenariorunner [--scenario small|medium|thousand]
//!                [--archs guided,autonuma-90,numa-first-touch]
//!                [--params tiny|laptop] [--seed N] [--workers N]
//!                [--out reports.json]
//! ```
//!
//! Defaults sweep the online-guidance placement policy against AutoNUMA
//! and the first-touch allocator on the small scenario. Output is one
//! row per architecture with per-class p50/p99 slowdown, stacked-DRAM
//! hit rate and pressure time; `--out` dumps the full reports (per-job
//! timelines included) as JSON.

use std::path::PathBuf;
use std::process::ExitCode;

use chameleon::{Architecture, ScaledParams};
use chameleon_scenarios::{run_grid, ScenarioSpec};

struct Options {
    scenario: String,
    archs: Vec<Architecture>,
    params: String,
    seed: u64,
    workers: Option<usize>,
    out: Option<PathBuf>,
}

const USAGE: &str = "usage: scenariorunner [options]
  --scenario NAME    scenario preset: small, medium, thousand (default small)
  --archs x,y        architectures (default: guided,autonuma-90,numa-first-touch);
                     any sweeprunner spelling works
  --params NAME      machine scale: tiny, laptop (default tiny)
  --seed N           scenario seed (default 42)
  --workers N        grid worker threads (default: one per architecture)
  --out FILE         dump the full reports to FILE (JSON)
  --help             this message";

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        scenario: "small".to_owned(),
        archs: Vec::new(),
        params: "tiny".to_owned(),
        seed: 42,
        workers: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => opts.scenario = value("--scenario")?,
            "--archs" => {
                for spec in value("--archs")?.split(',') {
                    let spec = spec.trim();
                    if !spec.is_empty() {
                        opts.archs.push(Architecture::parse(spec)?);
                    }
                }
            }
            "--params" => opts.params = value("--params")?,
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                let n: usize = v.parse().map_err(|e| format!("bad --workers {v:?}: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
                opts.workers = Some(n);
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("scenariorunner: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ScenarioSpec::by_name(&opts.scenario) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenariorunner: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = match opts.params.as_str() {
        "tiny" => ScaledParams::tiny(),
        "laptop" => ScaledParams::laptop(),
        other => {
            eprintln!("scenariorunner: unknown --params {other:?}; accepted: tiny, laptop");
            return ExitCode::FAILURE;
        }
    };
    let archs = if opts.archs.is_empty() {
        vec![
            Architecture::Guided,
            Architecture::AutoNuma { threshold_pct: 90 },
            Architecture::NumaFirstTouch,
        ]
    } else {
        opts.archs
    };
    let workers = opts.workers.unwrap_or(archs.len());

    println!(
        "[scenariorunner] scenario {} ({} jobs) x {} arch(s), seed {}, {} worker(s)",
        spec.name,
        spec.total_jobs(),
        archs.len(),
        opts.seed,
        workers,
    );
    let reports = run_grid(&archs, &params, &spec, opts.seed, workers);

    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "arch", "lat-p50", "lat-p99", "bat-p50", "bat-p99", "hit-rate", "pressure-cyc"
    );
    for r in &reports {
        println!(
            "{:<24} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.1}% {:>12}",
            r.arch,
            r.latency.p50_slowdown,
            r.latency.p99_slowdown,
            r.batch.p50_slowdown,
            r.batch.p99_slowdown,
            r.system.stacked_hit_rate * 100.0,
            r.pressure_cycles,
        );
    }

    if let Some(out) = opts.out {
        let json = serde_json::to_string_pretty(&reports).expect("serialise scenario reports");
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("scenariorunner: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("[saved {}]", out.display());
    }
    ExitCode::SUCCESS
}
