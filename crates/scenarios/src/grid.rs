//! Deterministic parallel grid execution over architectures.
//!
//! Mirrors the sweep engine's contract: cells are independent pure
//! functions of their description, workers pull from a shared atomic
//! queue, and results are assembled in cell order — so an `N`-worker
//! grid is bit-identical to a serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use chameleon::{Architecture, ScaledParams};

use crate::driver::{run_scenario, ScenarioReport};
use crate::spec::ScenarioSpec;

/// Runs `spec` under every architecture in `archs` with `workers`
/// threads, returning reports in `archs` order regardless of completion
/// order.
///
/// # Panics
///
/// Panics if `workers == 0`, or if a cell panics (the scenario driver's
/// own invariants; a scenario grid has no partial-failure mode).
pub fn run_grid(
    archs: &[Architecture],
    params: &ScaledParams,
    spec: &ScenarioSpec,
    seed: u64,
    workers: usize,
) -> Vec<ScenarioReport> {
    assert!(workers > 0, "at least one worker required");
    let slots: Mutex<Vec<Option<ScenarioReport>>> =
        Mutex::new(archs.iter().map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = workers.min(archs.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= archs.len() {
                    break;
                }
                let report = run_scenario(archs[idx], params, spec, seed);
                // INVARIANT: cells never poison the lock — run_scenario
                // panics propagate out of the scope, aborting the grid.
                slots.lock().expect("slots lock")[idx] = Some(report);
            });
        }
    });
    slots
        .into_inner()
        // INVARIANT: the scope joined every worker; a panic in any cell
        // already propagated out of `thread::scope`.
        .expect("slots lock")
        .into_iter()
        // INVARIANT: every index below archs.len() was claimed and filled.
        .map(|r| r.expect("all cells completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_preserves_arch_order() {
        let archs = [Architecture::Pom, Architecture::ChameleonOpt];
        let spec = ScenarioSpec::small();
        let reports = run_grid(&archs, &ScaledParams::tiny(), &spec, 3, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].arch, "PoM");
        assert_eq!(reports[1].arch, "Chameleon-Opt");
    }
}
