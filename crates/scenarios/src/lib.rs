#![forbid(unsafe_code)]
//! `chameleon-scenarios` — multi-tenant datacenter traffic over the
//! simulated machine.
//!
//! The paper evaluates Chameleon with rate-mode workloads: twelve copies
//! of one application, all resident before measurement begins. Real
//! consolidated servers look different — many tenants submit many short
//! jobs with heterogeneous footprints and priorities, and the memory
//! system sees arrival/exit churn instead of a steady state. This crate
//! models that regime:
//!
//! * a tenant/job model ([`ScenarioSpec`], [`TenantSpec`]) with seeded
//!   Poisson arrivals and per-tenant priority classes
//!   ([`TenantClass::Latency`] vs [`TenantClass::Batch`]),
//! * heterogeneous footprints: Table II applications plus the synthetic
//!   Zipf and loop/scan generators from `chameleon-workloads`,
//! * a time-slicing scheduler ([`run_scenario`]) that multiplexes
//!   hundreds to thousands of jobs over the simulated cores, binding
//!   processes per quantum and charging each job its occupied cycles,
//! * per-class and per-tenant metrics (slowdown p50/p99, guidance
//!   samples/promotions, stacked-pressure time) published into the
//!   system's metrics registry alongside the standard families,
//! * a deterministic grid runner ([`run_grid`]) sweeping architectures —
//!   including the online-guidance placement policy
//!   (`Architecture::Guided`) against AutoNUMA and first-touch.
//!
//! Everything is bit-deterministic from a single scenario seed: per-job
//! seeds are derived by hashing the job description (the sweep engine's
//! FNV-1a + SplitMix64 idiom), scheduling is a pure function of the
//! simulated clocks, and the grid assembles results in cell order no
//! matter how many workers ran them.

pub mod driver;
pub mod grid;
pub mod job;
pub mod spec;

pub use driver::{run_scenario, ClassStats, JobOutcome, ScenarioReport};
pub use grid::run_grid;
pub use job::{generate_jobs, JobCell};
pub use spec::{ScenarioSpec, TenantClass, TenantSpec, WorkloadKind};
