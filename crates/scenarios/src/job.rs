//! Job generation: seeded Poisson arrivals and per-job seed derivation.
//!
//! Seeds follow the sweep engine's idiom: the canonical-JSON description
//! of the job is FNV-1a hashed, mixed with the scenario seed, and
//! finished through SplitMix64 — so every job streams differently while
//! remaining a pure function of the scenario description.

use chameleon_simkit::hash::{fnv1a, splitmix64};
use chameleon_simkit::mem::ByteSize;
use chameleon_simkit::rng::DeterministicRng;
use chameleon_simkit::Cycle;
use serde::{Deserialize, Serialize};

use crate::spec::{ScenarioSpec, TenantClass, WorkloadKind};

/// One concrete job instance, ready to schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCell {
    /// Global job id (arrival order; ties broken by tenant order).
    pub id: usize,
    /// Owning tenant name.
    pub tenant: String,
    /// Priority class, copied from the tenant.
    pub class: TenantClass,
    /// What the job executes.
    pub workload: WorkloadKind,
    /// Instruction budget.
    pub instructions: u64,
    /// Process footprint (synthetic workloads; `App` jobs derive theirs
    /// from the application spec at admission).
    pub footprint: ByteSize,
    /// Memory operations per 1000 instructions (synthetic workloads).
    pub mem_per_kilo: u32,
    /// Arrival time in cycles.
    pub arrival: Cycle,
    /// Per-job RNG seed (content-derived, see module docs).
    pub seed: u64,
}

/// The exact payload a job seed hashes, serialised to canonical JSON.
/// Field order is the seed contract (the vendored `serde_json` keeps
/// declaration order).
#[derive(Serialize)]
struct SeedPayload {
    scenario: String,
    tenant: String,
    index: usize,
    arrival: Cycle,
}

/// Expands a scenario into its job list, sorted by `(arrival, tenant
/// order, index)` with global ids assigned in that order.
///
/// Arrivals are Poisson per tenant: inter-arrival gaps are exponential
/// draws from a tenant-private [`DeterministicRng`] whose seed mixes the
/// scenario seed with the tenant name, so adding a tenant never perturbs
/// another tenant's arrival process.
pub fn generate_jobs(spec: &ScenarioSpec, seed: u64) -> Vec<JobCell> {
    let mut cells: Vec<(usize, usize, JobCell)> = Vec::with_capacity(spec.total_jobs());
    for (tenant_idx, tenant) in spec.tenants.iter().enumerate() {
        let mut rng = DeterministicRng::seed(splitmix64(seed ^ fnv1a(tenant.name.as_bytes())));
        let rate_per_cycle = (tenant.arrivals_per_mcycle / 1_000_000.0).max(1e-12);
        let mut at: f64 = 0.0;
        for index in 0..tenant.jobs {
            // Exponential inter-arrival: -ln(1-U)/rate, at least a cycle.
            let u = rng.unit();
            at += (-(1.0 - u).ln() / rate_per_cycle).max(1.0);
            let arrival = at as Cycle;
            let payload = SeedPayload {
                scenario: spec.name.clone(),
                tenant: tenant.name.clone(),
                index,
                arrival,
            };
            // INVARIANT: the payload is plain strings and integers; the
            // vendored serde_json serialises it infallibly.
            let json = serde_json::to_string(&payload).expect("job payload serialises");
            cells.push((
                tenant_idx,
                index,
                JobCell {
                    id: 0, // assigned after the global sort below
                    tenant: tenant.name.clone(),
                    class: tenant.class,
                    workload: tenant.workload.clone(),
                    instructions: tenant.instructions.max(1),
                    footprint: tenant.footprint,
                    mem_per_kilo: tenant.mem_per_kilo,
                    arrival,
                    seed: splitmix64(fnv1a(json.as_bytes()) ^ seed),
                },
            ));
        }
    }
    cells.sort_by_key(|&(tenant_idx, index, ref cell)| (cell.arrival, tenant_idx, index));
    cells
        .into_iter()
        .enumerate()
        .map(|(id, (_, _, mut cell))| {
            cell.id = id;
            cell
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = ScenarioSpec::small();
        assert_eq!(generate_jobs(&spec, 7), generate_jobs(&spec, 7));
    }

    #[test]
    fn different_seeds_move_arrivals() {
        let spec = ScenarioSpec::small();
        assert_ne!(generate_jobs(&spec, 7), generate_jobs(&spec, 8));
    }

    #[test]
    fn jobs_are_sorted_with_sequential_ids() {
        let jobs = generate_jobs(&ScenarioSpec::thousand(), 42);
        assert_eq!(jobs.len(), 1000);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            if i > 0 {
                assert!(jobs[i - 1].arrival <= j.arrival, "arrival order");
            }
        }
    }

    #[test]
    fn per_job_seeds_are_distinct() {
        let jobs = generate_jobs(&ScenarioSpec::small(), 3);
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                assert_ne!(a.seed, b.seed, "seed collision between jobs");
            }
        }
    }

    #[test]
    fn arrivals_follow_the_tenant_rate_roughly() {
        let mut spec = ScenarioSpec::small();
        spec.tenants.truncate(1);
        spec.tenants[0].jobs = 500;
        spec.tenants[0].arrivals_per_mcycle = 100.0; // mean gap 10k cycles
        let jobs = generate_jobs(&spec, 1);
        let span = jobs.last().unwrap().arrival as f64;
        let mean_gap = span / jobs.len() as f64;
        assert!(
            (4_000.0..25_000.0).contains(&mean_gap),
            "mean inter-arrival {mean_gap} should be near 10k cycles"
        );
    }
}
