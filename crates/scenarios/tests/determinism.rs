//! The scenario determinism gate: a 1,000-job Poisson consolidation
//! scenario must be bit-deterministic from its seed — identical per-job
//! timelines and an identical `SystemReport` JSON across repeated runs
//! and across grid worker counts.

use chameleon::{Architecture, ScaledParams};
use chameleon_scenarios::{generate_jobs, run_grid, run_scenario, ScenarioSpec};

#[test]
fn thousand_job_scenario_is_bit_deterministic() {
    let spec = ScenarioSpec::thousand();
    assert_eq!(spec.total_jobs(), 1000);
    let params = ScaledParams::tiny();
    let a = run_scenario(Architecture::ChameleonOpt, &params, &spec, 42);
    let b = run_scenario(Architecture::ChameleonOpt, &params, &spec, 42);
    assert_eq!(a.jobs.len(), 1000);
    // Timelines must agree job for job...
    assert_eq!(a.jobs, b.jobs, "per-job timelines must be identical");
    // ...and the full reports (SystemReport metrics export included)
    // must serialise to identical bytes.
    let ja = serde_json::to_string(&a).expect("report serialises");
    let jb = serde_json::to_string(&b).expect("report serialises");
    assert_eq!(ja, jb, "repeated runs must be bit-identical");
}

#[test]
fn grid_is_identical_across_worker_counts() {
    let spec = ScenarioSpec::small();
    let params = ScaledParams::tiny();
    let archs = [
        Architecture::Guided,
        Architecture::AutoNuma { threshold_pct: 90 },
        Architecture::NumaFirstTouch,
        Architecture::ChameleonOpt,
    ];
    let serial = run_grid(&archs, &params, &spec, 7, 1);
    let parallel = run_grid(&archs, &params, &spec, 7, 4);
    let js = serde_json::to_string(&serial).expect("reports serialise");
    let jp = serde_json::to_string(&parallel).expect("reports serialise");
    assert_eq!(js, jp, "1-worker and 4-worker grids must agree bit-for-bit");
}

#[test]
fn different_seeds_produce_different_scenarios() {
    let spec = ScenarioSpec::small();
    let params = ScaledParams::tiny();
    let a = run_scenario(Architecture::ChameleonOpt, &params, &spec, 1);
    let b = run_scenario(Architecture::ChameleonOpt, &params, &spec, 2);
    assert_ne!(
        serde_json::to_string(&a).expect("serialises"),
        serde_json::to_string(&b).expect("serialises"),
        "seed must steer arrivals and address streams"
    );
}

#[test]
fn job_generation_is_stable_across_calls() {
    let spec = ScenarioSpec::thousand();
    let a = generate_jobs(&spec, 99);
    let b = generate_jobs(&spec, 99);
    assert_eq!(a, b);
}

#[test]
fn guided_scenario_reports_guidance_activity() {
    let spec = ScenarioSpec::small();
    let params = ScaledParams::tiny();
    let r = run_scenario(Architecture::Guided, &params, &spec, 42);
    let c = &r.system.metrics.counters;
    assert!(
        c.get("guidance.samples").copied().unwrap_or(0) > 0,
        "the guided policy must profile scenario traffic"
    );
    // The schema keys exist on every architecture, zeros elsewhere.
    let r2 = run_scenario(Architecture::NumaFirstTouch, &params, &spec, 42);
    assert_eq!(
        r2.system
            .metrics
            .counters
            .get("guidance.promotions")
            .copied(),
        Some(0),
        "non-guided runs publish the guidance keys as zeros"
    );
}
