//! The parallel execution engine: a `std::thread` worker pool over a
//! shared work queue, with per-job panic isolation, store-backed reuse,
//! and deterministic ordered assembly.
//!
//! Determinism contract: every cell is an independent [`Job`] whose
//! effective seed is a pure function of its description, and results are
//! assembled into the caller's job order regardless of which worker
//! finished first — so a 16-worker run serialises bit-identically to a
//! 1-worker run.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use chameleon::SystemReport;

use crate::job::Job;
use crate::progress::Progress;
use crate::store::Store;

/// Why a sweep failed.
#[derive(Debug)]
pub enum SweepError {
    /// One or more cells failed; each entry is `(job label, cause)`.
    /// Surviving cells still ran (and were stored), so a re-run only
    /// retries the failures.
    JobsFailed(Vec<(String, String)>),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::JobsFailed(fails) => {
                writeln!(f, "{} sweep cell(s) failed:", fails.len())?;
                for (label, cause) in fails {
                    writeln!(f, "  {label}: {cause}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// What a sweep did, with the ordered reports.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One report per input job, in input order.
    pub reports: Vec<SystemReport>,
    /// Cells satisfied from the store without running.
    pub cached: usize,
    /// Cells actually simulated this run.
    pub ran: usize,
}

/// Resolves the worker count: the `CHAMELEON_JOBS` environment variable
/// if set (warning on garbage), otherwise `available_parallelism`,
/// clamped to the number of runnable jobs.
pub fn worker_count(pending_jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = match std::env::var("CHAMELEON_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: CHAMELEON_JOBS={v:?} is not a positive integer; \
                     using {hw} (available parallelism)"
                );
                hw
            }
        },
        Err(_) => hw,
    };
    requested.min(pending_jobs.max(1))
}

/// The sweep engine: worker count, optional result store, progress
/// painting.
pub struct SweepEngine {
    workers: Option<usize>,
    store: Option<Store>,
    progress: bool,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine with environment-derived worker count, no store, and
    /// progress painting on.
    pub fn new() -> Self {
        Self {
            workers: None,
            store: None,
            progress: true,
        }
    }

    /// Forces an exact worker count (tests pin 1 vs 2; `CHAMELEON_JOBS`
    /// is ignored).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Attaches a content-addressed result store: stored cells are
    /// reused, fresh cells are persisted as soon as they finish.
    pub fn with_store(mut self, store: Store) -> Self {
        self.store = Some(store);
        self
    }

    /// Disables the stderr progress line (tests, quiet batch runs).
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Runs every job, reusing stored cells, and returns reports in job
    /// order.
    ///
    /// # Errors
    ///
    /// [`SweepError::JobsFailed`] if any cell panicked or returned an
    /// error; completed cells are still stored, so a re-run resumes.
    pub fn run(&self, jobs: &[Job]) -> Result<SweepOutcome, SweepError> {
        let mut slots: Vec<Option<SystemReport>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let hit = self.store.as_ref().and_then(|s| s.load(job));
            if hit.is_none() {
                pending.push(i);
            }
            slots.push(hit);
        }
        let cached = jobs.len() - pending.len();
        let progress = Progress::new(jobs.len(), cached, self.progress);

        let workers = self
            .workers
            .unwrap_or_else(|| worker_count(pending.len()))
            .min(pending.len().max(1));
        let slots = Mutex::new(slots);
        let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let qi = next.fetch_add(1, Ordering::SeqCst);
                    if qi >= pending.len() {
                        break;
                    }
                    let idx = pending[qi];
                    let job = &jobs[idx];
                    // Panic isolation: one diverging cell reports its
                    // cause and the rest of the sweep completes.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| job.run()));
                    let mut accesses = 0;
                    match outcome {
                        Ok(Ok(report)) => {
                            if let Some(store) = &self.store {
                                if let Err(e) = store.save(job, &report) {
                                    eprintln!("warning: failed to store cell {}: {e}", job.key());
                                }
                            }
                            accesses = report.run.total_mem_ops();
                            lock_recovered(&slots)[idx] = Some(report);
                        }
                        Ok(Err(msg)) => {
                            lock_recovered(&failures).push((idx, msg));
                        }
                        Err(panic) => {
                            lock_recovered(&failures).push((idx, panic_message(panic.as_ref())));
                        }
                    }
                    progress.cell_done(accesses);
                });
            }
        });

        let mut failures = failures
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !failures.is_empty() {
            failures.sort_by_key(|(idx, _)| *idx);
            return Err(SweepError::JobsFailed(
                failures
                    .into_iter()
                    .map(|(idx, cause)| (jobs[idx].label(), cause))
                    .collect(),
            ));
        }
        let reports = slots
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_iter()
            // INVARIANT: the failures branch above returned early.
            .map(|r| r.expect("no failures means every slot is filled"))
            .collect();
        Ok(SweepOutcome {
            reports,
            cached,
            ran: pending.len(),
        })
    }
}

/// Locks a worker-shared mutex, recovering from poison: cell panics are
/// already isolated by `catch_unwind`, so a poisoned lock can only mean
/// some *other* worker died mid-append — and every critical section here
/// is a single slot assignment or vector push, so the protected data is
/// still well-formed. Recovering keeps the surviving workers (and the
/// final collection pass) going instead of cascading the panic.
fn lock_recovered<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon::{Architecture, ScaledParams};

    fn tiny_jobs() -> Vec<Job> {
        let mut p = ScaledParams::tiny();
        p.instructions_per_core = 5_000;
        vec![
            Job::new(Architecture::Pom, "mcf", &p, 42),
            Job::new(Architecture::ChameleonOpt, "mcf", &p, 42),
        ]
    }

    #[test]
    fn reports_come_back_in_job_order() {
        let out = SweepEngine::new()
            .with_workers(2)
            .quiet()
            .run(&tiny_jobs())
            .unwrap();
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0].arch, "PoM");
        assert_eq!(out.reports[1].arch, "Chameleon-Opt");
        assert_eq!(out.cached, 0);
        assert_eq!(out.ran, 2);
    }

    #[test]
    fn failing_cell_reports_instead_of_poisoning_the_sweep() {
        let mut jobs = tiny_jobs();
        jobs[1].app = "doom".to_owned();
        let err = SweepEngine::new()
            .with_workers(2)
            .quiet()
            .run(&jobs)
            .unwrap_err();
        let SweepError::JobsFailed(fails) = err;
        assert_eq!(fails.len(), 1);
        assert!(fails[0].0.contains("doom"));
        assert!(fails[0].1.contains("doom"), "cause names the bad app");
    }

    #[test]
    fn worker_count_clamps_to_pending() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) >= 1);
    }
}
