//! Live progress line for long sweeps: completed/total, throughput, ETA.
//!
//! Written to stderr with a carriage return so runner stdout (the tables
//! the figure binaries print) stays clean and diffable.

use std::sync::Mutex;
use std::time::Instant;

/// Shared progress state, updated by worker threads as cells finish.
pub struct Progress {
    total: usize,
    cached: usize,
    state: Mutex<ProgressState>,
    enabled: bool,
}

struct ProgressState {
    done: usize,
    accesses: u64,
    started: Instant,
}

impl Progress {
    /// Tracks a sweep of `total` cells, `cached` of which were satisfied
    /// from the store before any worker started.
    pub fn new(total: usize, cached: usize, enabled: bool) -> Self {
        Self {
            total,
            cached,
            state: Mutex::new(ProgressState {
                done: 0,
                accesses: 0,
                started: Instant::now(),
            }),
            enabled,
        }
    }

    /// Records one finished cell that simulated `accesses` memory
    /// references (0 for failed cells) and repaints the line.
    pub fn cell_done(&self, accesses: u64) {
        // A poisoned lock means another worker panicked mid-update; the
        // counters are monotone scalars, so recover the guard and keep
        // painting rather than cascading the panic into this worker.
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        s.done += 1;
        s.accesses += accesses;
        if !self.enabled {
            return;
        }
        let pending = self.total - self.cached;
        let elapsed = s.started.elapsed().as_secs_f64().max(1e-9);
        let rate = s.done as f64 / elapsed;
        let eta = ((pending - s.done) as f64 / rate.max(1e-9)).round() as u64;
        let maccess = s.accesses as f64 / elapsed / 1e6;
        eprint!(
            "\r[sweep] {}/{} cells ({} cached), {:.2} cells/s, {:.1} Maccess/s, ETA {}s   ",
            self.cached + s.done,
            self.total,
            self.cached,
            rate,
            maccess,
            eta
        );
        if s.done == pending {
            eprintln!();
        }
    }

    /// Cells completed so far (excluding cached ones).
    #[cfg(test)]
    pub fn done(&self) -> usize {
        self.state.lock().expect("progress lock").done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_painting() {
        let p = Progress::new(4, 1, false);
        p.cell_done(100);
        p.cell_done(50);
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn paints_to_stderr_without_panicking() {
        let p = Progress::new(2, 0, true);
        p.cell_done(1_000_000);
        p.cell_done(0);
        assert_eq!(p.done(), 2);
    }
}
