//! Run sizing, selected with the `CHAMELEON_SCALE` environment variable.

/// Run sizing (`CHAMELEON_SCALE=quick` or `full`; default `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// ~4x fewer instructions; minutes-level total runtime.
    Quick,
    /// The default experiment sizing.
    Full,
}

impl RunScale {
    /// Reads the scale from the environment. An unrecognised value warns
    /// to stderr (naming the accepted spellings) and falls back to
    /// `Full`, so a typo like `CHAMELEON_SCALE=ful` is visible instead
    /// of silently running the long configuration.
    pub fn from_env() -> Self {
        match std::env::var("CHAMELEON_SCALE").as_deref() {
            Ok("quick") => RunScale::Quick,
            Ok("full") => RunScale::Full,
            Ok(other) => {
                eprintln!(
                    "warning: CHAMELEON_SCALE={other:?} is not recognised \
                     (accepted: \"quick\", \"full\"); defaulting to full"
                );
                RunScale::Full
            }
            Err(_) => RunScale::Full,
        }
    }

    /// Instructions per core for a measured run.
    pub fn instructions(self) -> u64 {
        match self {
            RunScale::Quick => 250_000,
            RunScale::Full => 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_recognises_all_values() {
        // Exercise every branch in one test: env mutation is not
        // thread-safe across tests, so keep it serialised here.
        std::env::set_var("CHAMELEON_SCALE", "quick");
        assert_eq!(RunScale::from_env(), RunScale::Quick);
        std::env::set_var("CHAMELEON_SCALE", "full");
        assert_eq!(RunScale::from_env(), RunScale::Full);
        // A typo warns (to stderr) and falls back to Full.
        std::env::set_var("CHAMELEON_SCALE", "ful");
        assert_eq!(RunScale::from_env(), RunScale::Full);
        std::env::remove_var("CHAMELEON_SCALE");
        assert_eq!(RunScale::from_env(), RunScale::Full);
        assert!(RunScale::Quick.instructions() < RunScale::Full.instructions());
    }
}
