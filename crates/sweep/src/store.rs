//! Content-addressed on-disk result store.
//!
//! Each simulation cell lives in its own file `results/store/<key>.json`
//! named by the job's [`JobKey`](crate::JobKey). Sweeps are therefore
//! resumable after interruption — already-stored cells are skipped — and
//! a parameter change invalidates exactly the cells it affects, not the
//! whole matrix. Files are written atomically (temp file + rename) so a
//! killed sweep never leaves a half-written cell behind; a corrupt or
//! mismatched file is treated as a miss and recomputed.

use std::io;
use std::path::{Path, PathBuf};

use chameleon::SystemReport;
use chameleon_simkit::metrics::SCHEMA_VERSION;
use serde::{Deserialize, Serialize};

use crate::job::{Job, JobKey};

/// One stored cell: enough metadata to audit the store with `jq` plus the
/// full report. The `key` and `schema_version` fields are verified on
/// load against the requesting job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredCell {
    /// Hex job key (must match the file name and the requesting job).
    pub key: String,
    /// Metrics schema version the report was produced under.
    pub schema_version: u32,
    /// Architecture label (audit metadata).
    pub arch: String,
    /// Application name (audit metadata).
    pub app: String,
    /// Base seed the job was described with.
    pub seed: u64,
    /// Instruction budget per core.
    pub instructions: u64,
    /// The cell's full report.
    pub report: SystemReport,
}

/// A directory of content-addressed cells.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a key is stored under.
    pub fn path_for(&self, key: JobKey) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    /// Loads the report for `job` if a valid cell is stored. Any
    /// defect — unreadable file, corrupt JSON, key or schema mismatch —
    /// reads as a miss so callers recompute instead of crashing.
    pub fn load(&self, job: &Job) -> Option<SystemReport> {
        let key = job.key();
        let data = std::fs::read_to_string(self.path_for(key)).ok()?;
        let cell: StoredCell = serde_json::from_str(&data).ok()?;
        if cell.key != key.to_string() || cell.schema_version != SCHEMA_VERSION {
            return None;
        }
        Some(cell.report)
    }

    /// Stores the report for `job`, atomically.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cell cannot be written.
    pub fn save(&self, job: &Job, report: &SystemReport) -> io::Result<PathBuf> {
        let key = job.key();
        let cell = StoredCell {
            key: key.to_string(),
            schema_version: SCHEMA_VERSION,
            arch: job.arch.label(),
            app: job.app.clone(),
            seed: job.seed,
            instructions: job.instructions,
            report: report.clone(),
        };
        let json = serde_json::to_string_pretty(&cell)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = self.path_for(key);
        // Unique-per-process temp name; rename is atomic on the same
        // filesystem, so concurrent writers of the same key both land a
        // complete file (their contents are identical by determinism).
        let tmp = self.root.join(format!("{key}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Number of cells currently stored (for progress/status lines).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon::{Architecture, ScaledParams};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chameleon-sweep-store-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_job() -> Job {
        let mut p = ScaledParams::tiny();
        p.instructions_per_core = 5_000;
        Job::new(Architecture::Pom, "mcf", &p, 7)
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let store = Store::open(scratch("roundtrip")).unwrap();
        let job = tiny_job();
        assert!(store.load(&job).is_none(), "fresh store must miss");
        let report = job.run().unwrap();
        store.save(&job, &report).unwrap();
        assert_eq!(store.len(), 1);
        let loaded = store.load(&job).expect("stored cell must hit");
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&report).unwrap(),
            "store round-trip must preserve the report exactly"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_cell_reads_as_miss() {
        let store = Store::open(scratch("corrupt")).unwrap();
        let job = tiny_job();
        let report = job.run().unwrap();
        let path = store.save(&job, &report).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load(&job).is_none(), "corrupt file must miss");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn key_mismatch_reads_as_miss() {
        let store = Store::open(scratch("mismatch")).unwrap();
        let job = tiny_job();
        let report = job.run().unwrap();
        store.save(&job, &report).unwrap();
        // A file stored under another job's name (e.g. hand-copied) must
        // not satisfy this job even if it parses.
        let mut other = job.clone();
        other.seed = 8;
        std::fs::copy(store.path_for(job.key()), store.path_for(other.key())).unwrap();
        assert!(store.load(&other).is_none(), "embedded key must match");
        let _ = std::fs::remove_dir_all(store.root());
    }
}
