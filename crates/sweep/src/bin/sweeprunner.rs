//! `sweeprunner` — execute arbitrary (apps × archs × ratios) experiment
//! grids on the parallel sweep engine with the content-addressed store.
//!
//! ```text
//! sweeprunner [--apps mcf,stream] [--archs pom,chameleon-opt]
//!             [--ratios 3,7] [--instructions N] [--seed N]
//!             [--jobs N] [--out grid.json] [--no-store]
//! ```
//!
//! Defaults reproduce the shared Figures 15–19 / Table II sweep: every
//! Table II application against every Figure 18 architecture at the
//! default 1:5 ratio, `CHAMELEON_SCALE` sizing. Cells already present in
//! `results/store/` are skipped, so an interrupted sweep resumes where
//! it stopped.

use std::path::PathBuf;
use std::process::ExitCode;

use chameleon::{Architecture, ScaledParams};
use chameleon_sweep::{GridSpec, Store, SweepEngine};
use chameleon_workloads::AppSpec;

struct Options {
    apps: Vec<String>,
    archs: Vec<Architecture>,
    ratios: Vec<u64>,
    instructions: Option<u64>,
    seed: u64,
    jobs: Option<usize>,
    out: Option<PathBuf>,
    store: bool,
}

const USAGE: &str = "usage: sweeprunner [options]
  --apps a,b,c       applications (default: all Table II apps)
  --archs x,y        architectures (default: the Figure 18 lineup);
                     spellings: flat-small, flat-large, alloy, pom, cameo,
                     chameleon, chameleon-opt, polymorphic, unison,
                     memcache, ch-flex, numa-first-touch, autonuma-<pct>
  --ratios 3,7       stacked:off-chip ratios (default: the params' own 1:5)
  --instructions N   instruction budget per core (default: CHAMELEON_SCALE)
  --seed N           base seed (default 42)
  --jobs N           worker threads (default: CHAMELEON_JOBS or all cores)
  --out FILE         also dump the grid's reports to FILE (JSON)
  --no-store         skip the content-addressed store (always recompute)
  --help             this message";

fn parse_list(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        apps: Vec::new(),
        archs: Vec::new(),
        ratios: Vec::new(),
        instructions: None,
        seed: 42,
        jobs: None,
        out: None,
        store: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--apps" => opts.apps = parse_list(&value("--apps")?),
            "--archs" => {
                for spec in parse_list(&value("--archs")?) {
                    opts.archs.push(Architecture::parse(&spec)?);
                }
            }
            "--ratios" => {
                for r in parse_list(&value("--ratios")?) {
                    opts.ratios.push(
                        r.parse::<u64>()
                            .map_err(|e| format!("bad ratio {r:?}: {e}"))?,
                    );
                }
            }
            "--instructions" => {
                let v = value("--instructions")?;
                opts.instructions = Some(
                    v.parse()
                        .map_err(|e| format!("bad --instructions {v:?}: {e}"))?,
                );
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|e| format!("bad --jobs {v:?}: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--no-store" => opts.store = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweeprunner: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scale = chameleon_sweep::RunScale::from_env();
    let mut params = ScaledParams::laptop();
    params.instructions_per_core = opts.instructions.unwrap_or_else(|| scale.instructions());

    let mut grid = GridSpec::new(
        params,
        if opts.apps.is_empty() {
            AppSpec::table2().into_iter().map(|a| a.name).collect()
        } else {
            opts.apps
        },
        if opts.archs.is_empty() {
            Architecture::figure18()
        } else {
            opts.archs
        },
    );
    grid.ratios = opts.ratios;
    grid.seed = opts.seed;

    for app in &grid.apps {
        if let Err(e) = AppSpec::parse(app) {
            eprintln!("sweeprunner: {e}");
            return ExitCode::FAILURE;
        }
    }

    let out_dir =
        PathBuf::from(std::env::var("CHAMELEON_RESULTS").unwrap_or_else(|_| "results".to_owned()));
    let mut engine = SweepEngine::new();
    if opts.store {
        match Store::open(out_dir.join("store")) {
            Ok(store) => engine = engine.with_store(store),
            Err(e) => {
                eprintln!("sweeprunner: cannot open result store: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(jobs) = opts.jobs {
        engine = engine.with_workers(jobs);
    }

    let jobs = grid.jobs();
    println!(
        "[sweeprunner] {} apps x {} archs x {} ratio(s) = {} cells, {} instr/core, seed {}",
        grid.apps.len(),
        grid.archs.len(),
        grid.ratios.len().max(1),
        jobs.len(),
        grid.params.instructions_per_core,
        grid.seed,
    );
    let outcome = match engine.run(&jobs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweeprunner: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "[sweeprunner] done: {} cells ({} from store, {} simulated)",
        outcome.reports.len(),
        outcome.cached,
        outcome.ran,
    );

    // Compact per-cell summary table.
    println!(
        "{:<12} {:<24} {:>9} {:>9} {:>10} {:>9}",
        "app", "arch", "hit-rate", "amat", "swaps", "ipc"
    );
    for (job, report) in jobs.iter().zip(&outcome.reports) {
        println!(
            "{:<12} {:<24} {:>8.1}% {:>9.1} {:>10} {:>9.3}",
            job.app,
            report.arch,
            report.stacked_hit_rate * 100.0,
            report.amat,
            report.swaps,
            report.run.geomean_ipc(),
        );
    }

    if let Some(out) = opts.out {
        let dump: Vec<serde_json::Value> = jobs
            .iter()
            .zip(&outcome.reports)
            .map(|(job, report)| {
                serde_json::json!({
                    "key": job.key().to_string(),
                    "app": job.app,
                    "arch": report.arch,
                    "report": report,
                })
            })
            .collect();
        let json = serde_json::to_string_pretty(&dump).expect("serialise grid dump");
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("sweeprunner: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("[saved {}]", out.display());
    }
    ExitCode::SUCCESS
}
