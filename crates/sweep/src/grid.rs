//! Grid expansion: (applications × architectures × capacity ratios) →
//! a flat, deterministically ordered job list.

use chameleon::{Architecture, ScaledParams};

use crate::job::Job;

/// An experiment grid. Expansion order is ratios-major, then apps, then
/// archs — matching the row-major `apps × archs` layout the figure
/// runners index, repeated per ratio.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Base parameters every cell starts from.
    pub params: ScaledParams,
    /// Applications (rows).
    pub apps: Vec<String>,
    /// Architectures (columns).
    pub archs: Vec<Architecture>,
    /// Stacked:off-chip ratios to sweep; empty means "keep the base
    /// params' ratio".
    pub ratios: Vec<u64>,
    /// Base seed shared by every cell (each cell still mixes in its job
    /// hash).
    pub seed: u64,
}

impl GridSpec {
    /// A grid over the base params' own ratio.
    pub fn new(params: ScaledParams, apps: Vec<String>, archs: Vec<Architecture>) -> Self {
        Self {
            params,
            apps,
            archs,
            ratios: Vec::new(),
            seed: 42,
        }
    }

    /// Number of cells the grid expands to.
    pub fn cells(&self) -> usize {
        self.apps.len() * self.archs.len() * self.ratios.len().max(1)
    }

    /// Expands the grid to jobs.
    pub fn jobs(&self) -> Vec<Job> {
        let param_sets: Vec<ScaledParams> = if self.ratios.is_empty() {
            vec![self.params.clone()]
        } else {
            self.ratios
                .iter()
                .map(|&r| self.params.clone().with_ratio(r))
                .collect()
        };
        let mut jobs = Vec::with_capacity(self.cells());
        for params in &param_sets {
            for app in &self.apps {
                for &arch in &self.archs {
                    jobs.push(Job::new(arch, app.clone(), params, self.seed));
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_row_major_per_ratio() {
        let mut g = GridSpec::new(
            ScaledParams::tiny(),
            vec!["mcf".to_owned(), "stream".to_owned()],
            vec![Architecture::Pom, Architecture::ChameleonOpt],
        );
        g.ratios = vec![3, 7];
        assert_eq!(g.cells(), 8);
        let jobs = g.jobs();
        assert_eq!(jobs.len(), 8);
        // First block: ratio 3, mcf row.
        assert_eq!(jobs[0].app, "mcf");
        assert_eq!(jobs[0].arch, Architecture::Pom);
        assert_eq!(jobs[1].arch, Architecture::ChameleonOpt);
        assert_eq!(jobs[2].app, "stream");
        // Second block starts at index 4 with the other ratio.
        assert_ne!(
            jobs[0].params.hma.stacked.capacity,
            jobs[4].params.hma.stacked.capacity
        );
    }

    #[test]
    fn empty_ratio_list_keeps_base_params() {
        let g = GridSpec::new(
            ScaledParams::tiny(),
            vec!["mcf".to_owned()],
            vec![Architecture::Pom],
        );
        let jobs = g.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].params, ScaledParams::tiny());
    }
}
