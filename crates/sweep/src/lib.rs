#![forbid(unsafe_code)]
//! `chameleon-sweep` — deterministic parallel experiment execution.
//!
//! The Figures 15–19 / Table II evaluation is a matrix of independent
//! simulation cells. This crate turns that matrix into explicit
//! [`Job`]s, runs them on a [`SweepEngine`] worker pool sized from
//! `available_parallelism` (capped by the `CHAMELEON_JOBS` environment
//! variable), and memoises every cell in a content-addressed [`Store`] under
//! `results/store/` keyed by a stable hash of the full job description
//! plus the metrics schema version.
//!
//! Guarantees:
//!
//! * **Determinism** — a parallel sweep produces bit-identical
//!   [`chameleon::SystemReport`]s to a serial sweep: per-cell RNG seeds
//!   are derived from the job hash, and results are assembled in job
//!   order, never completion order.
//! * **Resumability** — each cell is its own store file, written
//!   atomically; an interrupted sweep re-run skips every cell already on
//!   disk.
//! * **Precise invalidation** — the store key covers architecture,
//!   application, seed, instruction budget, *all* of
//!   [`chameleon::ScaledParams`] and the metrics `schema_version`, so a
//!   parameter change re-runs exactly the affected cells.
//! * **Panic isolation** — a diverging cell fails its job; the rest of
//!   the sweep completes and the error names the cell.
//!
//! ```no_run
//! use chameleon::{Architecture, ScaledParams};
//! use chameleon_sweep::{Job, Store, SweepEngine};
//!
//! let params = ScaledParams::laptop();
//! let jobs: Vec<Job> = ["mcf", "stream"]
//!     .iter()
//!     .map(|app| Job::new(Architecture::ChameleonOpt, *app, &params, 42))
//!     .collect();
//! let engine = SweepEngine::new().with_store(Store::open("results/store").unwrap());
//! let outcome = engine.run(&jobs).unwrap();
//! assert_eq!(outcome.reports.len(), 2);
//! ```

mod engine;
mod grid;
mod job;
mod progress;
mod scale;
mod store;

pub use engine::{worker_count, SweepEngine, SweepError, SweepOutcome};
pub use grid::GridSpec;
pub use job::{Job, JobKey};
pub use scale::RunScale;
pub use store::{Store, StoredCell};
