//! The unit of sweep work: one (architecture, application) simulation
//! cell with its full parameterisation, and the stable content hash that
//! names it in the result store.

use std::fmt;

use chameleon::{Architecture, ScaledParams, SystemReport};
use chameleon_simkit::hash::{fnv1a, splitmix64};
use chameleon_simkit::metrics::SCHEMA_VERSION;
use serde::{Deserialize, Serialize};

/// A stable 64-bit content hash naming one [`Job`] in the store.
///
/// The key covers the *entire* job description (architecture, application,
/// every field of [`ScaledParams`], seed, instruction budget) plus the
/// metrics [`SCHEMA_VERSION`], so any change that could alter the report —
/// ratio, core count, DRAM timings, metrics shape — produces a different
/// key and the stale cell is simply never looked up again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobKey(pub u64);

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One simulation cell: everything needed to reproduce a single
/// [`SystemReport`] bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Memory organisation to simulate.
    pub arch: Architecture,
    /// Table II application name.
    pub app: String,
    /// Full system parameters (the job overrides `instructions_per_core`
    /// with [`Job::instructions`] at run time).
    pub params: ScaledParams,
    /// Base RNG seed; the effective per-cell seed mixes in the job hash.
    pub seed: u64,
    /// Instruction budget per core.
    pub instructions: u64,
}

/// The exact payload the job key hashes, serialised to canonical JSON.
/// Field order is the hash contract: the vendored `serde_json` keeps
/// declaration order, so this struct's layout *is* the key format.
/// (Owned fields: the vendored derive does not support generics.)
#[derive(Serialize)]
struct KeyPayload {
    schema_version: u32,
    arch: Architecture,
    app: String,
    seed: u64,
    instructions: u64,
    params: ScaledParams,
}

impl Job {
    /// Builds a job taking the instruction budget from
    /// `params.instructions_per_core`.
    pub fn new(
        arch: Architecture,
        app: impl Into<String>,
        params: &ScaledParams,
        seed: u64,
    ) -> Self {
        Self {
            arch,
            app: app.into(),
            params: params.clone(),
            seed,
            instructions: params.instructions_per_core,
        }
    }

    /// The content hash naming this job in the store.
    pub fn key(&self) -> JobKey {
        let mut params = self.params.clone();
        // The budget is hashed through `instructions`; neutralise the
        // duplicate so `Job::new(p).key()` equals a hand-built job with
        // the same budget.
        params.instructions_per_core = self.instructions;
        let payload = KeyPayload {
            schema_version: SCHEMA_VERSION,
            arch: self.arch,
            app: self.app.clone(),
            seed: self.seed,
            instructions: self.instructions,
            params,
        };
        // INVARIANT: KeyPayload is strings, integers, and finite float
        // config values in plain structs — no non-string map keys, no
        // NaN (which serde_json rejects) — so serialisation cannot fail.
        let json = serde_json::to_string(&payload).expect("job description serialises");
        JobKey(fnv1a(json.as_bytes()))
    }

    /// The RNG seed the cell actually runs with: the base seed mixed with
    /// the job hash, so every cell of a sweep streams differently while
    /// remaining a pure function of the job description (serial and
    /// parallel runs agree by construction).
    pub fn effective_seed(&self) -> u64 {
        splitmix64(self.key().0 ^ self.seed)
    }

    /// A short human label for progress lines and error messages.
    pub fn label(&self) -> String {
        format!("{}/{}", self.arch.label(), self.app)
    }

    /// Runs the cell with the paper protocol and returns its report.
    /// Deterministic: depends only on the job description.
    pub fn run(&self) -> Result<SystemReport, String> {
        let mut params = self.params.clone();
        params.instructions_per_core = self.instructions;
        let mut system = chameleon::System::new(self.arch, &params);
        system.run_paper_protocol(&self.app, self.effective_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Job {
        let mut p = ScaledParams::tiny();
        p.instructions_per_core = 10_000;
        Job::new(Architecture::Pom, "mcf", &p, 42)
    }

    #[test]
    fn key_is_stable_for_identical_jobs() {
        assert_eq!(base().key(), base().key());
        assert_eq!(base().effective_seed(), base().effective_seed());
    }

    #[test]
    fn key_covers_every_dimension() {
        let b = base();
        let mut by_app = b.clone();
        by_app.app = "stream".to_owned();
        let mut by_arch = b.clone();
        by_arch.arch = Architecture::ChameleonOpt;
        let mut by_seed = b.clone();
        by_seed.seed = 43;
        let mut by_budget = b.clone();
        by_budget.instructions = 20_000;
        let mut by_ratio = b.clone();
        by_ratio.params = by_ratio.params.with_ratio(3);
        let mut by_cores = b.clone();
        by_cores.params.cores = 3;
        let mut by_timing = b.clone();
        by_timing.params.l3.latency += 1;
        let keys: Vec<JobKey> = [
            &b, &by_app, &by_arch, &by_seed, &by_budget, &by_ratio, &by_cores, &by_timing,
        ]
        .iter()
        .map(|j| j.key())
        .collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "jobs {i} and {j} must hash differently");
                }
            }
        }
    }

    #[test]
    fn budget_field_wins_over_params_budget() {
        let mut p = ScaledParams::tiny();
        p.instructions_per_core = 10_000;
        let via_new = Job::new(Architecture::Pom, "mcf", &p, 42);
        let mut p2 = ScaledParams::tiny();
        p2.instructions_per_core = 999_999; // ignored: `instructions` is the budget
        let mut hand_built = Job::new(Architecture::Pom, "mcf", &p2, 42);
        hand_built.instructions = 10_000;
        assert_eq!(via_new.key(), hand_built.key());
    }

    #[test]
    fn key_display_is_16_hex_chars() {
        let s = base().key().to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn tiny_job_runs() {
        let report = base().run().expect("mcf is a Table II app");
        assert_eq!(report.arch, "PoM");
        assert_eq!(report.workload, "mcf");
    }

    #[test]
    fn unknown_app_is_an_error_not_a_panic() {
        let mut j = base();
        j.app = "doom".to_owned();
        assert!(j.run().is_err());
    }
}
