//! The engine's two contracts, end to end:
//!
//! 1. **Determinism** — a parallel sweep serialises bit-identically to a
//!    serial sweep of the same grid.
//! 2. **Resumability** — an interrupted sweep's stored cells are reused
//!    on re-run; corrupt cells are recomputed, not crashed on.

use chameleon::{Architecture, ScaledParams};
use chameleon_sweep::{GridSpec, Job, Store, SweepEngine};

fn small_grid() -> Vec<Job> {
    let mut params = ScaledParams::tiny();
    params.instructions_per_core = 10_000;
    GridSpec::new(
        params,
        vec!["mcf".to_owned(), "stream".to_owned()],
        vec![Architecture::Pom, Architecture::ChameleonOpt],
    )
    .jobs()
}

fn scratch_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("chameleon-sweep-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).expect("scratch store")
}

fn to_json(reports: &[chameleon::SystemReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| serde_json::to_string_pretty(r).expect("report serialises"))
        .collect()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let jobs = small_grid();
    let serial = SweepEngine::new()
        .with_workers(1)
        .quiet()
        .run(&jobs)
        .expect("serial sweep");
    let parallel = SweepEngine::new()
        .with_workers(2)
        .quiet()
        .run(&jobs)
        .expect("parallel sweep");
    assert_eq!(serial.ran, jobs.len());
    assert_eq!(parallel.ran, jobs.len());
    let serial_json = to_json(&serial.reports);
    let parallel_json = to_json(&parallel.reports);
    assert_eq!(
        serial_json, parallel_json,
        "2-worker sweep must serialise exactly like the 1-worker sweep"
    );
    // Reports come back in job order, not completion order.
    for (job, report) in jobs.iter().zip(&serial.reports) {
        assert_eq!(report.workload, job.app);
        assert_eq!(report.arch, job.arch.label());
    }
}

#[test]
fn interrupted_sweep_resumes_from_the_store() {
    let jobs = small_grid();
    let store = scratch_store("resume");

    // "Interrupted" sweep: only the first two cells completed and were
    // stored before the run died.
    let partial = SweepEngine::new()
        .with_workers(2)
        .with_store(store.clone())
        .quiet()
        .run(&jobs[..2])
        .expect("partial sweep");
    assert_eq!(partial.ran, 2);
    assert_eq!(store.len(), 2);

    // The re-run skips the stored cells and simulates only the rest.
    let resumed = SweepEngine::new()
        .with_workers(2)
        .with_store(store.clone())
        .quiet()
        .run(&jobs)
        .expect("resumed sweep");
    assert_eq!(resumed.cached, 2, "stored cells must be reused");
    assert_eq!(resumed.ran, jobs.len() - 2);

    // And the assembled result is still identical to a from-scratch run.
    let fresh = SweepEngine::new()
        .with_workers(1)
        .quiet()
        .run(&jobs)
        .expect("fresh sweep");
    assert_eq!(to_json(&resumed.reports), to_json(&fresh.reports));

    // A third run is fully cached.
    let warm = SweepEngine::new()
        .with_store(store.clone())
        .quiet()
        .run(&jobs)
        .expect("warm sweep");
    assert_eq!(warm.cached, jobs.len());
    assert_eq!(warm.ran, 0);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn corrupt_store_cell_is_recomputed_not_crashed_on() {
    let jobs = small_grid();
    let store = scratch_store("corrupt");
    let first = SweepEngine::new()
        .with_store(store.clone())
        .quiet()
        .run(&jobs)
        .expect("first sweep");

    // Truncate one cell mid-file, as a killed writer without the atomic
    // rename would have left it.
    let victim = store.path_for(jobs[1].key());
    let bytes = std::fs::read(&victim).expect("stored cell readable");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate cell");

    let recovered = SweepEngine::new()
        .with_store(store.clone())
        .quiet()
        .run(&jobs)
        .expect("recovery sweep");
    assert_eq!(
        recovered.cached,
        jobs.len() - 1,
        "only the corrupt cell misses"
    );
    assert_eq!(recovered.ran, 1, "the corrupt cell is recomputed");
    assert_eq!(to_json(&recovered.reports), to_json(&first.reports));

    // The recomputed cell was re-stored and now hits again.
    assert!(store.load(&jobs[1]).is_some());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn store_key_invalidates_on_any_parameter_change() {
    let store = scratch_store("invalidate");
    let mut params = ScaledParams::tiny();
    params.instructions_per_core = 10_000;
    let job = Job::new(Architecture::Pom, "mcf", &params, 42);
    let report = job.run().expect("cell runs");
    store.save(&job, &report).expect("store cell");

    // Same cell, one DRAM-geometry knob changed: different key, miss.
    let mut changed = job.clone();
    changed.params = changed.params.with_ratio(3);
    assert_ne!(job.key(), changed.key());
    assert!(store.load(&changed).is_none());
    // The original still hits.
    assert!(store.load(&job).is_some());
    let _ = std::fs::remove_dir_all(store.root());
}
