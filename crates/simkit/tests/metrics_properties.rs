//! Property tests for the metrics registry: snapshot/delta algebra,
//! epoch-accounting conservation, and event-trace ordering.

use chameleon_simkit::metrics::{EventKind, EventTrace, Registry, Snapshot};
use proptest::prelude::*;

/// Strategy for a small set of (name, base, increment) counter triples
/// with distinct names.
fn counter_triples() -> impl Strategy<Value = Vec<(String, u64, u64)>> {
    prop::collection::vec((0usize..8, 0u64..1_000_000, 0u64..1_000_000), 1..8).prop_map(|v| {
        let mut triples: Vec<(String, u64, u64)> = Vec::new();
        for (id, base, inc) in v {
            let name = format!("ctr.{id}");
            if !triples.iter().any(|(n, _, _)| *n == name) {
                triples.push((name, base, inc));
            }
        }
        triples
    })
}

proptest! {
    /// `earlier.plus(later.delta(earlier)) == later` whenever counters
    /// only move forward (the registry's monotone-counter regime).
    #[test]
    fn snapshot_delta_round_trips(triples in counter_triples()) {
        let mut earlier = Snapshot::default();
        let mut later = Snapshot::default();
        for (name, base, inc) in &triples {
            earlier.counters.insert(name.clone(), *base);
            later.counters.insert(name.clone(), base + inc);
        }
        let delta = later.delta(&earlier);
        let rebuilt = earlier.plus(&delta);
        prop_assert_eq!(rebuilt.counters, later.counters);
    }

    /// Summing every epoch's deltas reproduces the registry's final
    /// aggregate counters exactly — nothing is double-counted or lost.
    #[test]
    fn epoch_deltas_sum_to_final_aggregate(
        epochs in prop::collection::vec(counter_triples(), 1..6),
    ) {
        let mut reg = Registry::new(0);
        let mut now = 0u64;
        for epoch in &epochs {
            for (name, _base, inc) in epoch {
                let v = reg.counter(name) + inc;
                reg.set_counter(name, v);
            }
            now += 1_000;
            reg.end_epoch(now);
        }
        let mut summed: std::collections::BTreeMap<String, u64> = Default::default();
        for e in reg.epochs() {
            for (name, d) in &e.deltas {
                *summed.entry(name.clone()).or_insert(0) += d;
            }
        }
        for (name, total) in &summed {
            prop_assert_eq!(*total, reg.counter(name), "counter {}", name);
        }
        // And the reverse direction: every live counter is covered.
        for (name, v) in &reg.snapshot().counters {
            prop_assert_eq!(summed.get(name).copied().unwrap_or(0), *v);
        }
    }

    /// Events pushed in nondecreasing sim time iterate in nondecreasing
    /// sim time, regardless of how often the ring buffer wrapped, and
    /// the kept/dropped split is exact.
    #[test]
    fn trace_order_is_monotone_in_sim_time(
        gaps in prop::collection::vec(0u64..1_000, 1..64),
        capacity in 1usize..32,
    ) {
        let mut trace = EventTrace::new(capacity);
        let mut at = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            at += gap;
            trace.push(at, EventKind::Swap, i as u64);
        }
        prop_assert_eq!(trace.len(), gaps.len().min(capacity));
        prop_assert_eq!(trace.dropped() as usize, gaps.len() - trace.len());
        let times: Vec<u64> = trace.iter().map(|e| e.at).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "times {:?}", times);
        // The ring keeps the newest events: the last one pushed survives.
        prop_assert_eq!(times.last().copied(), Some(at));
    }
}
