//! A deterministic discrete-event queue.
//!
//! Events scheduled at the same cycle are delivered in insertion order
//! (FIFO), which keeps multi-component simulations reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An ordered queue of `(cycle, payload)` events.
///
/// # Example
///
/// ```
/// use chameleon_simkit::events::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // FIFO within a cycle
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(3, 'x');
        q.schedule(1, 'a');
        q.schedule(1, 'b');
        q.schedule(2, 'm');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 'a'), (1, 'b'), (2, 'm'), (3, 'x')]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        assert!(q.pop_due(9).is_none());
        assert_eq!(q.pop_due(10), Some((10, ())));
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(0, 1u32);
        q.schedule(0, 2u32);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_is_min() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        q.schedule(4, ());
        assert_eq!(q.peek_time(), Some(4));
    }
}
