//! Byte-size helpers shared by every memory-modelling crate.

use serde::{Deserialize, Serialize};

/// A size in bytes with readable constructors and formatting.
///
/// # Example
///
/// ```
/// use chameleon_simkit::mem::ByteSize;
/// let stacked = ByteSize::gib(4);
/// assert_eq!(stacked.bytes(), 4 << 30);
/// assert_eq!(stacked.to_string(), "4.0GiB");
/// assert_eq!(ByteSize::kib(2) / ByteSize::bytes_exact(64), 32);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Exactly `n` bytes.
    pub const fn bytes_exact(n: u64) -> Self {
        Self(n)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        Self(n << 10)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        Self(n << 20)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        Self(n << 30)
    }

    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Whether this size is a power of two.
    pub const fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }

    /// Integer division by another size (e.g. capacity / segment size).
    ///
    /// Also available through the `/` operator; the inherent method stays
    /// callable in const-adjacent and method-chaining positions.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero bytes.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: ByteSize) -> u64 {
        assert!(rhs.0 > 0, "division by zero-sized ByteSize");
        self.0 / rhs.0
    }
}

impl std::ops::Div for ByteSize {
    type Output = u64;
    fn div(self, rhs: ByteSize) -> u64 {
        ByteSize::div(self, rhs)
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl std::fmt::Display for ByteSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0 as f64;
        if self.0 >= 1 << 30 {
            write!(f, "{:.1}GiB", b / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.1}MiB", b / (1u64 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.1}KiB", b / (1u64 << 10) as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kib(1).bytes(), 1024);
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20);
        assert_eq!(ByteSize::gib(20).bytes(), 20u64 << 30);
        assert_eq!(ByteSize::bytes_exact(64).bytes(), 64);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ByteSize::gib(4) + ByteSize::gib(20), ByteSize::gib(24));
        assert_eq!(ByteSize::kib(2) * 3, ByteSize::bytes_exact(6144));
        assert_eq!(ByteSize::gib(4) / ByteSize::kib(2), 2 << 20);
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::bytes_exact(64).to_string(), "64B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.0KiB");
        assert_eq!(ByteSize::mib(512).to_string(), "512.0MiB");
        assert_eq!(ByteSize::gib(4).to_string(), "4.0GiB");
    }

    #[test]
    fn power_of_two() {
        assert!(ByteSize::kib(2).is_power_of_two());
        assert!(!ByteSize::bytes_exact(3).is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = ByteSize::kib(1) / ByteSize::bytes_exact(0);
    }
}
