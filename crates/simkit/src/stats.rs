//! Statistics primitives used throughout the simulator.
//!
//! All statistics are plain data: cheap to create, cheap to merge, and
//! serialisable so experiment runners can dump them as JSON.

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use chameleon_simkit::stats::Counter;
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hit/total ratio, e.g. a cache hit rate.
///
/// # Example
///
/// ```
/// use chameleon_simkit::stats::Ratio;
/// let mut r = Ratio::new();
/// r.record(true);
/// r.record(false);
/// r.record(true);
/// assert!((r.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (rate reported as 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation; `hit` selects the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hit fraction in `[0, 1]`; zero when nothing has been recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Streaming mean/variance/min/max over `f64` samples (Welford's method).
///
/// # Example
///
/// ```
/// use chameleon_simkit::stats::RunningStat;
/// let mut s = RunningStat::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStat {
    /// Creates an empty statistic.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance; zero when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also holds zero.
///
/// # Example
///
/// ```
/// use chameleon_simkit::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// h.record(700);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(2), 2); // 4..8
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples in bucket `i` (range `[2^i, 2^(i+1))`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Iterator over `(bucket_floor, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Approximate quantile using bucket floors (`q` in `[0,1]`).
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (self.buckets.len().saturating_sub(1))
    }
}

/// Geometric mean of a set of strictly positive values.
///
/// The paper reports workload performance as the geometric mean of per-app
/// IPC (Equation 1 uses geometric-mean execution times).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Example
///
/// ```
/// use chameleon_simkit::stats::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        let mut d = Counter::new();
        d.add(8);
        c.merge(&d);
        assert_eq!(c.value(), 50);
        assert_eq!(format!("{c}"), "50");
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().rate(), 0.0);
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio::new();
        a.record(true);
        let mut b = Ratio::new();
        b.record(false);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn running_stat_mean_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn running_stat_empty() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(10), 1); // 1024
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (2, 2), (1024, 1)]);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 1 << 20);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geo_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
