#![forbid(unsafe_code)]
//! Simulation kernel for the Chameleon heterogeneous memory simulator.
//!
//! This crate provides the domain-neutral building blocks every other crate
//! in the workspace is written against:
//!
//! * [`Cycle`] arithmetic and clock-domain conversion ([`ClockDomain`]),
//! * a deterministic, seedable random source ([`rng::DeterministicRng`]),
//! * an ordered event queue ([`events::EventQueue`]),
//! * statistics primitives ([`stats::Counter`], [`stats::RunningStat`],
//!   [`stats::Histogram`], [`stats::Ratio`]),
//! * the metrics registry and event trace ([`metrics::Registry`],
//!   [`metrics::EventTrace`]) that experiment runners export from,
//! * byte-size helpers ([`mem::ByteSize`]).
//!
//! # Example
//!
//! ```
//! use chameleon_simkit::{ClockDomain, stats::RunningStat};
//!
//! // Off-chip DRAM runs at 800 MHz while cores run at 3.6 GHz.
//! let dram = ClockDomain::from_mhz(800.0);
//! let cpu = ClockDomain::from_mhz(3600.0);
//! let cpu_cycles = dram.convert_cycles(11, &cpu); // tCAS in CPU cycles
//! assert!(cpu_cycles >= 11);
//!
//! let mut lat = RunningStat::new();
//! lat.record(cpu_cycles as f64);
//! assert_eq!(lat.count(), 1);
//! ```

pub mod events;
pub mod hash;
pub mod mem;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod timeline;

/// A point in simulated time, measured in cycles of some clock domain.
///
/// Kept as a plain `u64` alias rather than a newtype: cycle arithmetic is
/// pervasive in the timing models and the clock domain is always implied by
/// context (each model owns a [`ClockDomain`]).
pub type Cycle = u64;

/// A clock domain with a fixed frequency, used to convert cycle counts and
/// wall-clock durations between components running at different speeds
/// (cores, stacked DRAM, off-chip DRAM).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClockDomain {
    /// Frequency in kilohertz. Kept in kHz so common DRAM/CPU frequencies
    /// are representable exactly as integers.
    khz: u64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive, got {mhz}");
        Self {
            khz: (mhz * 1000.0).round() as u64,
        }
    }

    /// Creates a clock domain from a frequency in gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_mhz(ghz * 1000.0)
    }

    /// Frequency of this domain in megahertz.
    pub fn mhz(&self) -> f64 {
        self.khz as f64 / 1000.0
    }

    /// Duration of one cycle in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0e6 / self.khz as f64
    }

    /// Converts a duration in nanoseconds to a whole number of cycles of
    /// this domain, rounding up (a partial cycle still occupies the unit).
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        assert!(ns >= 0.0, "duration must be non-negative, got {ns}");
        (ns / self.cycle_ns()).ceil() as Cycle
    }

    /// Converts a cycle count of this domain into cycles of `other`,
    /// rounding up.
    pub fn convert_cycles(&self, cycles: Cycle, other: &ClockDomain) -> Cycle {
        // (cycles / self.khz) seconds * other.khz cycles/second, round up.
        let num = (cycles as u128) * (other.khz as u128);
        let den = self.khz as u128;
        num.div_ceil(den) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_roundtrip() {
        let d = ClockDomain::from_mhz(800.0);
        assert_eq!(d.mhz(), 800.0);
        assert!((d.cycle_ns() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn ghz_constructor_matches_mhz() {
        assert_eq!(ClockDomain::from_ghz(3.6), ClockDomain::from_mhz(3600.0));
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let d = ClockDomain::from_mhz(1000.0); // 1 ns per cycle
        assert_eq!(d.ns_to_cycles(0.0), 0);
        assert_eq!(d.ns_to_cycles(1.0), 1);
        assert_eq!(d.ns_to_cycles(1.01), 2);
        assert_eq!(d.ns_to_cycles(138.0), 138);
    }

    #[test]
    fn convert_cycles_between_domains() {
        let dram = ClockDomain::from_mhz(800.0);
        let cpu = ClockDomain::from_mhz(3600.0);
        // 11 DRAM cycles at 800MHz = 13.75ns = 49.5 CPU cycles -> 50.
        assert_eq!(dram.convert_cycles(11, &cpu), 50);
        // Converting to the same domain is identity.
        assert_eq!(dram.convert_cycles(11, &dram), 11);
    }

    #[test]
    fn convert_zero_cycles() {
        let a = ClockDomain::from_mhz(800.0);
        let b = ClockDomain::from_mhz(3600.0);
        assert_eq!(a.convert_cycles(0, &b), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::from_mhz(0.0);
    }
}
