//! Time-series sampling for experiment timelines.
//!
//! Figure 2c and Figure 3 are timelines; [`Sampler`] collects `(time,
//! value)` points at a fixed stride so runners don't hand-roll sampling
//! loops, and offers the summary statistics the paper quotes about its
//! timelines (peak, final value, time-above-threshold).

use serde::{Deserialize, Serialize};

/// One sample of a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time coordinate (cycles, minutes, epochs — caller-defined).
    pub at: u64,
    /// Observed value.
    pub value: f64,
}

/// A fixed-stride time-series collector.
///
/// # Example
///
/// ```
/// use chameleon_simkit::timeline::Sampler;
///
/// let mut s = Sampler::new(10);
/// for t in 0..35 {
///     s.offer(t, t as f64);
/// }
/// assert_eq!(s.samples().len(), 4); // t = 0, 10, 20, 30
/// assert_eq!(s.peak().unwrap().value, 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sampler {
    stride: u64,
    next_at: u64,
    samples: Vec<Sample>,
}

impl Sampler {
    /// Creates a sampler that keeps one sample every `stride` time units.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        Self {
            stride,
            next_at: 0,
            samples: Vec::new(),
        }
    }

    /// Offers an observation; it is kept if the stride boundary passed.
    pub fn offer(&mut self, at: u64, value: f64) {
        if at >= self.next_at {
            self.samples.push(Sample { at, value });
            self.next_at = at + self.stride;
        }
    }

    /// Forces a sample regardless of stride (e.g. the final point).
    pub fn force(&mut self, at: u64, value: f64) {
        self.samples.push(Sample { at, value });
        self.next_at = at + self.stride;
    }

    /// The collected samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The sample with the largest value.
    pub fn peak(&self) -> Option<Sample> {
        self.samples
            .iter()
            .copied()
            .max_by(|a, b| a.value.total_cmp(&b.value))
    }

    /// The last sample.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Fraction of samples with `value < threshold` (Figure 3's pressure
    /// regions).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.value < threshold).count() as f64
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_one_per_stride() {
        let mut s = Sampler::new(5);
        for t in 0..20 {
            s.offer(t, 1.0);
        }
        let ats: Vec<u64> = s.samples().iter().map(|x| x.at).collect();
        assert_eq!(ats, vec![0, 5, 10, 15]);
    }

    #[test]
    fn force_always_records() {
        let mut s = Sampler::new(100);
        s.offer(0, 1.0);
        s.offer(1, 2.0); // dropped
        s.force(2, 3.0);
        assert_eq!(s.samples().len(), 2);
        assert_eq!(s.last().unwrap().value, 3.0);
    }

    #[test]
    fn peak_and_fraction() {
        let mut s = Sampler::new(1);
        for (t, v) in [(0, 5.0), (1, 9.0), (2, 1.0), (3, 2.0)] {
            s.offer(t, v);
        }
        assert_eq!(s.peak().unwrap().value, 9.0);
        assert_eq!(s.fraction_below(3.0), 0.5);
    }

    #[test]
    fn empty_sampler_is_sane() {
        let s = Sampler::new(1);
        assert!(s.peak().is_none());
        assert!(s.last().is_none());
        assert_eq!(s.fraction_below(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        Sampler::new(0);
    }
}
