//! Stable, dependency-free hashing primitives for deterministic seeding.
//!
//! The sweep engine and the scenario layer both derive per-cell / per-job
//! RNG seeds from a content hash of the work description, so that serial
//! and parallel execution agree bit-for-bit. Both use the same two
//! primitives: FNV-1a to name the work, and the SplitMix64 finaliser to
//! spread the hash bits into a statistically unrelated seed.

/// FNV-1a, 64-bit: simple, dependency-free, stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser: spreads the key bits so seeds derived from
/// similar inputs are statistically unrelated.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn splitmix64_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Consecutive inputs land far apart.
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(1) >> 32, splitmix64(2) >> 32);
    }
}
