//! Deterministic random number generation.
//!
//! All stochastic behaviour in the simulator (workload address streams,
//! allocation jitter, sampling) flows through [`DeterministicRng`] so that
//! every experiment is exactly reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, seedable RNG with convenience helpers for the patterns
/// the simulator needs (zipf-like skew, bounded ranges, Bernoulli draws).
///
/// # Example
///
/// ```
/// use chameleon_simkit::rng::DeterministicRng;
/// let mut a = DeterministicRng::seed(7);
/// let mut b = DeterministicRng::seed(7);
/// assert_eq!(a.below(100), b.below(100));
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: SmallRng,
}

impl DeterministicRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; useful to give each core or each
    /// application its own stream while staying reproducible.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed(s)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi ({lo} >= {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.inner.gen::<f64>() < p
    }

    /// One raw 64-bit draw — exactly one generator step, the same step
    /// every other single-draw helper consumes. Exposed so precomputed
    /// decode tables (`chameleon-workloads`) can replay a helper's draw
    /// with pure integer arithmetic.
    pub fn raw(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// The integer threshold that makes [`Self::chance_with`] replay
    /// [`Self::chance`]`(p)` exactly.
    ///
    /// `chance(p)` compares `m * 2^-53 < p`, where `m` is the high 53
    /// bits of one raw draw. Both sides are exact: `m * 2^-53` scales an
    /// integer below 2^53 by a power of two, and `p * 2^53` likewise only
    /// shifts `p`'s exponent. An integer `m` satisfies `m < p * 2^53`
    /// iff `m < ceil(p * 2^53)`, so the ceiling is the exact count of
    /// accepting draws and the comparison can be done in integers.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance_threshold(p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        (p * (1u64 << 53) as f64).ceil() as u64
    }

    /// Integer-only Bernoulli draw: `true` iff the high 53 bits of one
    /// raw draw fall below `threshold` (from [`Self::chance_threshold`]).
    /// Draw-for-draw identical to [`Self::chance`] — same accept set,
    /// same single generator step — without the int→float convert and
    /// float compare.
    pub fn chance_with(&mut self, threshold: u64) -> bool {
        (self.raw() >> 11) < threshold
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A hot/cold skewed index: with probability `hot_prob` returns an index
    /// in the first `hot_n` slots, otherwise anywhere in `[0, n)`.
    ///
    /// This is the simulator's cheap stand-in for zipf-distributed page
    /// popularity: a small hot set absorbs most references.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hot_n > n`.
    pub fn skewed_index(&mut self, n: u64, hot_n: u64, hot_prob: f64) -> u64 {
        assert!(n > 0, "skewed_index requires n > 0");
        assert!(hot_n <= n, "hot set cannot exceed total ({hot_n} > {n})");
        if hot_n > 0 && self.chance(hot_prob) {
            self.below(hot_n)
        } else {
            self.below(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed(42);
        let mut b = DeterministicRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.below(1 << 40), b.below(1 << 40));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = DeterministicRng::seed(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let av: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DeterministicRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DeterministicRng::seed(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn skewed_index_hits_hot_set() {
        let mut r = DeterministicRng::seed(11);
        let mut hot = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if r.skewed_index(1000, 100, 0.9) < 100 {
                hot += 1;
            }
        }
        // 90% directed + ~1% incidental; allow slack.
        let frac = hot as f64 / trials as f64;
        assert!(frac > 0.85 && frac < 0.95, "hot fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_bound_panics() {
        DeterministicRng::seed(0).below(0);
    }

    #[test]
    fn chance_with_replays_chance_exactly() {
        // Mirrored generators, probabilities spanning subnormal-adjacent,
        // non-dyadic, and boundary values: every draw must agree, and the
        // generators must stay in lockstep (one step per draw).
        for p in [
            0.0,
            1e-300,
            1e-12,
            0.3,
            0.5,
            0.25706,
            0.95,
            1.0 - 1e-12,
            1.0,
        ] {
            let thr = DeterministicRng::chance_threshold(p);
            let mut a = DeterministicRng::seed(0xD1CE);
            let mut b = DeterministicRng::seed(0xD1CE);
            for i in 0..50_000 {
                assert_eq!(a.chance(p), b.chance_with(thr), "p={p} draw {i}");
            }
            assert_eq!(a.raw(), b.raw(), "generators must stay in lockstep");
        }
    }

    #[test]
    fn chance_threshold_extremes() {
        assert_eq!(DeterministicRng::chance_threshold(0.0), 0);
        assert_eq!(DeterministicRng::chance_threshold(1.0), 1 << 53);
        let mut r = DeterministicRng::seed(4);
        assert!(!r.chance_with(0));
        assert!(r.chance_with(1 << 53));
    }
}
