//! The metrics subsystem: a registry of named counters, gauges, and
//! histograms with per-epoch snapshots, plus a bounded event trace for
//! discrete simulation events.
//!
//! Every component keeps its own cheap stats struct on the hot path
//! ([`crate::stats`]); a [`MetricSource`] implementation *publishes* those
//! values into a [`Registry`] under a dotted prefix (`hma.swaps`,
//! `dram.stacked.row_hits`, `cache.l3.misses`, `os.major_faults`). The
//! registry is the single point experiment runners read from: it can
//! snapshot itself, diff snapshots into per-epoch deltas, and export
//! everything as one serialisable [`MetricsExport`] with a stable schema.
//!
//! Discrete events (mode transitions, segment swaps, `ISA-Alloc`/`ISA-Free`
//! calls, writebacks, page faults) are recorded into an [`EventTrace`] — a
//! fixed-capacity ring buffer that keeps the most recent events and counts
//! what it dropped, so tracing never grows without bound on long runs.
//!
//! # Naming convention
//!
//! Metric names are dotted paths: `<component>.<metric>`, lowercase,
//! `snake_case` leaves. Derived statistics published from a
//! [`crate::stats::RunningStat`] append `.mean`, `.min`, `.max` (gauges)
//! and `.count` (counter).
//!
//! # Epoch model
//!
//! Counters in the registry are *absolute* (publish overwrites with the
//! source's running total). [`Registry::end_epoch`] diffs the current
//! counters against the values at the previous epoch boundary and records
//! the difference as an [`EpochRecord`]; summing every epoch's deltas
//! therefore reproduces the final aggregate exactly (see the property
//! tests in `crates/simkit/tests/metrics_properties.rs`).
//!
//! # Example
//!
//! ```
//! use chameleon_simkit::metrics::{EventKind, Registry};
//!
//! let mut reg = Registry::new(1024);
//! reg.set_counter("hma.swaps", 2);
//! reg.record_event(100, EventKind::Swap, 7);
//! reg.end_epoch(100);
//! reg.set_counter("hma.swaps", 5);
//! reg.end_epoch(200);
//! let export = reg.export();
//! assert_eq!(export.epochs[1].deltas["hma.swaps"], 3);
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::stats::{Counter, Histogram, RunningStat};
use crate::Cycle;

/// Version of the [`MetricsExport`] JSON schema. Bump on any breaking
/// change to the exported shape (the golden-schema test pins it).
pub const SCHEMA_VERSION: u32 = 1;

/// A component that can publish its statistics into a [`Registry`].
///
/// Implementations overwrite absolute values (counters are running totals,
/// gauges are current readings); publishing twice with the same prefix is
/// idempotent.
pub trait MetricSource {
    /// Publishes all metrics under `prefix` (e.g. `"dram.stacked."`).
    fn publish(&self, prefix: &str, reg: &mut Registry);
}

/// The kind of a discrete trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A segment group reconfigured from PoM mode to cache mode.
    ModeToCache,
    /// A segment group reconfigured from cache mode to PoM mode.
    ModeToPom,
    /// A competing-counter segment swap in PoM mode.
    Swap,
    /// A remap forced by `ISA-Alloc`/`ISA-Free` reconfiguration.
    IsaSwap,
    /// A segment fill into the stacked cache.
    Fill,
    /// A dirty segment written back to off-chip memory.
    Writeback,
    /// Cached segments dropped when a group left cache mode.
    Clear,
    /// An `ISA-Alloc` call reached the memory controller.
    IsaAlloc,
    /// An `ISA-Free` call reached the memory controller.
    IsaFree,
    /// A minor (mapping-only) page fault.
    MinorFault,
    /// A major (backing-store) page fault.
    MajorFault,
}

/// One discrete event in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub at: Cycle,
    /// What happened.
    pub kind: EventKind,
    /// The subject of the event: a segment group index for HMA events, a
    /// virtual page number for faults.
    pub subject: u64,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// Keeps the most recent `capacity` events; older events are overwritten
/// and counted in [`EventTrace::dropped`]. Iteration is always oldest to
/// newest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventTrace {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl EventTrace {
    /// Creates a trace that retains at most `capacity` events.
    ///
    /// A zero capacity disables tracing entirely (every push is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, at: Cycle, kind: EventKind, subject: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        let ev = TraceEvent { at, kind, subject };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted (or refused) because of the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (older, newer) = (&self.events[self.head..], &self.events[..self.head]);
        older.iter().chain(newer.iter())
    }

    /// Discards all retained events and the drop count.
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// A point-in-time copy of the registry's counters and gauges.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Absolute counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge readings by name.
    pub gauges: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    ///
    /// Names absent from `earlier` are treated as zero there, so newly
    /// appearing counters contribute their full value. Zero differences
    /// are omitted: a missing name means "no change", which keeps
    /// per-epoch records proportional to activity, not registry size.
    pub fn delta(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                let d = v.saturating_sub(before);
                (d != 0).then(|| (name.clone(), d))
            })
            // INVARIANT: snapshot deltas are taken at epoch boundaries,
            // amortized off the per-access hot path.
            .collect()
    }

    /// Applies a delta on top of this snapshot's counters, producing the
    /// later snapshot (gauges are carried over unchanged).
    ///
    /// `later == earlier.plus(&later.delta(&earlier))` whenever counters
    /// are monotone — the round-trip the property tests pin down.
    pub fn plus(&self, delta: &BTreeMap<String, u64>) -> Snapshot {
        let mut out = self.clone();
        for (name, &d) in delta {
            *out.counters.entry(name.clone()).or_insert(0) += d;
        }
        out
    }
}

/// Counter activity between two consecutive epoch boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub index: u64,
    /// Cycle at which the epoch ended.
    pub end_at: Cycle,
    /// Per-counter increase during this epoch.
    pub deltas: BTreeMap<String, u64>,
    /// Gauge readings at the end of the epoch.
    pub gauges: BTreeMap<String, f64>,
}

/// The serialisable dump of a registry: final aggregates, the per-epoch
/// timeline, and the retained event trace in chronological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsExport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Final absolute counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge readings.
    pub gauges: BTreeMap<String, f64>,
    /// Final histograms as `(bucket_floor, count)` pairs.
    pub histograms: BTreeMap<String, Vec<(u64, u64)>>,
    /// Per-epoch counter deltas, oldest first.
    pub epochs: Vec<EpochRecord>,
    /// Events evicted from the trace by the capacity cap.
    pub events_dropped: u64,
    /// Retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl Default for MetricsExport {
    fn default() -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            epochs: Vec::new(),
            events_dropped: 0,
            events: Vec::new(),
        }
    }
}

/// The central metrics registry.
///
/// Owns named counters/gauges/histograms, the epoch timeline, and an
/// [`EventTrace`]. See the module docs for the naming convention and the
/// epoch model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    epochs: Vec<EpochRecord>,
    /// Counter values at the last epoch boundary.
    epoch_base: Snapshot,
    trace: EventTrace,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TRACE_CAPACITY)
    }
}

impl Registry {
    /// Default event-trace capacity: enough to hold the interesting tail
    /// of a measurement run without unbounded growth.
    pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

    /// Creates an empty registry whose trace retains `trace_capacity`
    /// events.
    pub fn new(trace_capacity: usize) -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            epochs: Vec::new(),
            epoch_base: Snapshot::default(),
            trace: EventTrace::new(trace_capacity),
        }
    }

    /// Sets a counter to an absolute value (publish semantics).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Publishes a [`Counter`]'s running total.
    pub fn set_counter_from(&mut self, name: &str, c: &Counter) {
        self.set_counter(name, c.value());
    }

    /// Current value of a counter (zero if never set).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge reading.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current gauge reading (zero if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Publishes a [`RunningStat`] as `<name>.mean/.min/.max` gauges plus
    /// a `<name>.count` counter.
    pub fn set_stat(&mut self, name: &str, s: &RunningStat) {
        self.set_gauge(&format!("{name}.mean"), s.mean());
        self.set_gauge(&format!("{name}.min"), s.min());
        self.set_gauge(&format!("{name}.max"), s.max());
        self.set_counter(&format!("{name}.count"), s.count());
    }

    /// Records one sample into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Replaces a named histogram with a copy of `h`.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.insert(name.to_owned(), h.clone());
    }

    /// A named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Records a discrete event into the trace.
    pub fn record_event(&mut self, at: Cycle, kind: EventKind, subject: u64) {
        self.trace.push(at, kind, subject);
    }

    /// Merges externally collected events (e.g. a component's own trace)
    /// into this registry's trace, oldest first. The caller is responsible
    /// for ordering `events` by time if global monotonicity matters.
    pub fn absorb_events<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.trace.push(ev.at, ev.kind, ev.subject);
        }
    }

    /// The event trace.
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }

    /// A point-in-time copy of counters and gauges.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        }
    }

    /// Closes the current epoch at `now`: records the counter deltas since
    /// the previous boundary (plus current gauges) and starts a new epoch.
    pub fn end_epoch(&mut self, now: Cycle) -> &EpochRecord {
        let snap = self.snapshot();
        let deltas = snap.delta(&self.epoch_base);
        self.epochs.push(EpochRecord {
            index: self.epochs.len() as u64,
            end_at: now,
            deltas,
            gauges: snap.gauges.clone(),
        });
        self.epoch_base = snap;
        // INVARIANT: pushed three lines above; the vec is non-empty.
        self.epochs.last().expect("epoch just pushed")
    }

    /// The closed epochs, oldest first.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Exports everything as a stable, serialisable structure.
    pub fn export(&self) -> MetricsExport {
        MetricsExport {
            schema_version: SCHEMA_VERSION,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.iter().collect()))
                .collect(),
            epochs: self.epochs.clone(),
            events_dropped: self.trace.dropped(),
            events: self.trace.iter().copied().collect(),
        }
    }

    /// Clears all values, epochs, and events, keeping the trace capacity.
    pub fn reset(&mut self) {
        let cap = self.trace.capacity();
        *self = Self::new(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_publish_absolute_values() {
        let mut reg = Registry::new(8);
        reg.set_counter("a.x", 3);
        reg.set_counter("a.x", 5); // overwrite, not accumulate
        reg.set_gauge("a.g", 0.5);
        assert_eq!(reg.counter("a.x"), 5);
        assert_eq!(reg.gauge("a.g"), 0.5);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn epoch_deltas_diff_consecutive_boundaries() {
        let mut reg = Registry::new(8);
        reg.set_counter("c", 10);
        reg.end_epoch(100);
        reg.set_counter("c", 25);
        reg.set_counter("d", 4);
        reg.end_epoch(200);
        let epochs = reg.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].deltas["c"], 10);
        assert_eq!(epochs[1].deltas["c"], 15);
        assert_eq!(epochs[1].deltas["d"], 4);
        assert_eq!(epochs[1].end_at, 200);
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_dropped() {
        let mut t = EventTrace::new(3);
        for i in 0..5u64 {
            t.push(i * 10, EventKind::Swap, i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let subjects: Vec<u64> = t.iter().map(|e| e.subject).collect();
        assert_eq!(subjects, vec![2, 3, 4]);
        let times: Vec<Cycle> = t.iter().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_capacity_trace_drops_everything() {
        let mut t = EventTrace::new(0);
        t.push(1, EventKind::Fill, 0);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn snapshot_delta_plus_round_trip() {
        let mut reg = Registry::new(8);
        reg.set_counter("x", 7);
        let before = reg.snapshot();
        reg.set_counter("x", 12);
        reg.set_counter("y", 3);
        let after = reg.snapshot();
        let delta = after.delta(&before);
        assert_eq!(before.plus(&delta).counters, after.counters);
    }

    #[test]
    fn export_has_stable_schema() {
        let mut reg = Registry::new(4);
        reg.set_counter("c", 1);
        reg.observe("h", 5);
        reg.record_event(9, EventKind::IsaAlloc, 2);
        reg.end_epoch(10);
        let export = reg.export();
        assert_eq!(export.schema_version, SCHEMA_VERSION);
        assert_eq!(export.histograms["h"], vec![(4, 1)]);
        assert_eq!(export.events.len(), 1);
        assert_eq!(export.epochs.len(), 1);
    }

    #[test]
    fn reset_clears_everything_but_keeps_capacity() {
        let mut reg = Registry::new(2);
        reg.set_counter("c", 1);
        reg.record_event(1, EventKind::Swap, 0);
        reg.end_epoch(5);
        reg.reset();
        assert_eq!(reg.counter("c"), 0);
        assert!(reg.epochs().is_empty());
        assert!(reg.trace().is_empty());
        assert_eq!(reg.trace().capacity(), 2);
    }

    #[test]
    fn stat_publishes_mean_min_max_count() {
        let mut s = RunningStat::new();
        s.record(2.0);
        s.record(4.0);
        let mut reg = Registry::new(1);
        reg.set_stat("lat", &s);
        assert_eq!(reg.gauge("lat.mean"), 3.0);
        assert_eq!(reg.gauge("lat.min"), 2.0);
        assert_eq!(reg.gauge("lat.max"), 4.0);
        assert_eq!(reg.counter("lat.count"), 2);
    }
}
